//! The marketplace `M`: catalog, sample vending, query execution.
//!
//! Mirrors the interaction model of Figure 1: schema metadata is free, sample
//! purchases and projection queries cost money, and every sale is recorded so
//! experiments can report exactly what a strategy paid.
//!
//! ## Concurrency model
//!
//! The marketplace is a **shared-readable core**: every shopper-facing method
//! takes `&self`, so hundreds of concurrent sessions (see [`crate::session`])
//! can browse, quote and purchase against one `Arc<Marketplace>` without a
//! global lock.
//!
//! * The catalog is an immutable [`CatalogSnapshot`] behind an `RwLock<Arc<…>>`
//!   — readers clone the `Arc` (one atomic refcount bump) and then operate
//!   entirely lock-free on frozen listings. Sellers publish new dataset
//!   versions via [`Marketplace::apply_update`], which swaps in a fresh
//!   snapshot; in-flight readers keep the version they pinned, so no reader
//!   ever observes a torn catalog (the invariant `Σ listing versions ==
//!   snapshot version` holds in every snapshot ever vended).
//! * Revenue accounting is **striped per account** (one stripe per session,
//!   plus an anonymous stripe for direct calls): each sale appends to its
//!   stripe under a short-lived mutex, and [`Marketplace::revenue`] folds
//!   stripes in account order. Within a stripe sales are recorded in purchase
//!   order, so per-session subtotals are bit-identical to the session's own
//!   ledger no matter how sessions interleave, and the total is deterministic
//!   for any fixed set of per-session histories.
//! * Sales counters are plain atomics.

use crate::catalog::{DatasetId, DatasetMeta};
use crate::pricing::{EntropyPricing, PricingModel};
use crate::query::ProjectionQuery;
use crate::session::SessionId;
use dance_relation::{AttrSet, RelationError, Result, Table, TableDelta};
use dance_sampling::CorrelatedSampler;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One dataset held by the marketplace.
#[derive(Debug)]
struct Listing {
    meta: DatasetMeta,
    table: Arc<Table>,
}

/// One immutable catalog state. Updates never mutate a published state; they
/// build a successor and swap the `Arc`.
#[derive(Debug)]
struct CatalogState {
    listings: Vec<Arc<Listing>>,
    /// Global catalog version: bumped by one on every seller update, so
    /// `version == Σ listing.meta.version` in every coherent state — a
    /// cheap tearing detector for sessions.
    version: u64,
}

/// A pinned, immutable view of the catalog: listings, schema metadata and
/// pricing frozen at one catalog version. Cloning is one `Arc` bump; all
/// methods are lock-free. This is what a [`crate::session::Session`] pins at
/// open time and shops against for its whole lifetime.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    state: Arc<CatalogState>,
    pricing: EntropyPricing,
}

impl CatalogSnapshot {
    /// The global catalog version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.state.version
    }

    /// Number of listed datasets.
    pub fn len(&self) -> usize {
        self.state.listings.len()
    }

    /// `true` when nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.state.listings.is_empty()
    }

    fn listing(&self, id: DatasetId) -> Result<&Listing> {
        self.state
            .listings
            .get(id.0 as usize)
            .map(|l| l.as_ref())
            .ok_or_else(|| RelationError::UnknownDataset(id.to_string()))
    }

    /// Free schema-level catalog (what the I-layer is built from).
    pub fn metas(&self) -> Vec<DatasetMeta> {
        self.state.listings.iter().map(|l| l.meta.clone()).collect()
    }

    /// Metadata of one dataset.
    pub fn meta(&self, id: DatasetId) -> Result<&DatasetMeta> {
        Ok(&self.listing(id)?.meta)
    }

    /// The listed table at this snapshot's version (shared, not copied).
    pub fn table(&self, id: DatasetId) -> Result<&Arc<Table>> {
        Ok(&self.listing(id)?.table)
    }

    /// Quote the price of a projection query at this snapshot's prices.
    pub fn quote(&self, id: DatasetId, attrs: &AttrSet) -> Result<f64> {
        let listing = self.listing(id)?;
        self.pricing.price(&listing.table, attrs)
    }

    /// Draw a correlated sample (and price it) from this snapshot — pure:
    /// no revenue is recorded. [`Marketplace::buy_sample`] and
    /// [`crate::session::Session::buy_sample`] wrap this with accounting.
    pub fn sample(
        &self,
        id: DatasetId,
        key_attrs: &AttrSet,
        rate: f64,
        seed: u64,
    ) -> Result<(Table, f64)> {
        let listing = self.listing(id)?;
        let sampler = CorrelatedSampler::new(rate, seed);
        let sample = sampler.sample(&listing.table, key_attrs)?;
        let price = self
            .pricing
            .sample_price(&listing.table, &listing.meta.attr_set(), rate)?;
        Ok((sample, price))
    }

    /// Quote a batch of projections in one call. The listing is resolved
    /// once per item, and prices are memoized per distinct
    /// `(dataset, attrs)` pair — pricing is a pure function of the pinned
    /// listing, so a repeated quote inside a batch is answered from the
    /// memo, bit-identical to per-item [`CatalogSnapshot::quote`] calls.
    /// Prices come back in item order.
    pub fn quote_batch(&self, items: &[(DatasetId, AttrSet)]) -> Result<Vec<f64>> {
        use std::collections::hash_map::Entry;
        let mut memo: std::collections::HashMap<(DatasetId, &AttrSet), f64> =
            std::collections::HashMap::with_capacity(items.len());
        let mut prices = Vec::with_capacity(items.len());
        for (id, attrs) in items {
            let price = match memo.entry((*id, attrs)) {
                Entry::Occupied(hit) => *hit.get(),
                Entry::Vacant(slot) => {
                    let listing = self.listing(*id)?;
                    *slot.insert(self.pricing.price(&listing.table, attrs)?)
                }
            };
            prices.push(price);
        }
        Ok(prices)
    }

    /// Evaluate a projection query (and price it) — pure, no accounting.
    pub fn project(&self, q: &ProjectionQuery) -> Result<(Table, f64)> {
        let price = self.quote(q.dataset, &q.attrs)?;
        let listing = self.listing(q.dataset)?;
        let data = listing.table.project(&q.attrs)?;
        Ok((data, price))
    }

    /// Sanity invariant: the snapshot is coherent iff the per-listing
    /// versions sum to the global version (each update bumps exactly one
    /// listing and the global counter together).
    pub fn is_coherent(&self) -> bool {
        let sum: u64 = self.state.listings.iter().map(|l| l.meta.version).sum();
        sum == self.state.version
    }
}

/// Which kind of purchase a sale records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SaleKind {
    Sample,
    Query,
}

/// One recorded sale on an account stripe.
#[derive(Debug, Clone, Copy)]
struct Sale {
    kind: SaleKind,
    price: f64,
}

/// Striped revenue ledger: one stripe per account, appended under a
/// short-lived mutex on the (rare, money-moving) write path only.
#[derive(Debug, Default)]
struct Accounts {
    /// Direct (non-session) sales.
    anonymous: Vec<Sale>,
    /// Per-session stripes, keyed by session id, kept sorted by id.
    sessions: Vec<(SessionId, Vec<Sale>)>,
}

impl Accounts {
    fn stripe(&mut self, account: Option<SessionId>) -> &mut Vec<Sale> {
        match account {
            None => &mut self.anonymous,
            Some(id) => {
                let at = match self.sessions.binary_search_by_key(&id, |(s, _)| *s) {
                    Ok(at) => at,
                    Err(at) => {
                        self.sessions.insert(at, (id, Vec::new()));
                        at
                    }
                };
                &mut self.sessions[at].1
            }
        }
    }

    /// Deterministic total: fold each stripe in purchase order, then fold
    /// stripe subtotals in account order (anonymous first, then session ids
    /// ascending). Per-stripe order is each buyer's own purchase order, so
    /// the result is independent of cross-session interleaving.
    fn revenue(&self) -> f64 {
        let subtotal = |sales: &[Sale]| sales.iter().fold(0.0, |acc, s| acc + s.price);
        self.sessions
            .iter()
            .fold(subtotal(&self.anonymous), |acc, (_, sales)| {
                acc + subtotal(sales)
            })
    }
}

/// An in-memory data marketplace with entropy-based query pricing, safe to
/// share across threads (`&self` everywhere; see the module docs for the
/// concurrency model).
#[derive(Debug)]
pub struct Marketplace {
    catalog: RwLock<Arc<CatalogState>>,
    pricing: EntropyPricing,
    accounts: Mutex<Accounts>,
    samples_sold: AtomicUsize,
    queries_sold: AtomicUsize,
}

impl Marketplace {
    /// List `tables` with the given pricing model. Dataset ids follow input
    /// order; each dataset's default sample key is its first attribute unless
    /// a `default_key` override is supplied via [`Marketplace::with_keys`].
    pub fn new(tables: Vec<Table>, pricing: EntropyPricing) -> Marketplace {
        Self::build(tables, Vec::new(), pricing)
    }

    /// Same as [`Marketplace::new`] with per-dataset sample-key overrides
    /// (aligned with `tables`; `None` keeps the first-attribute default).
    pub fn with_keys(
        tables: Vec<Table>,
        keys: Vec<Option<AttrSet>>,
        pricing: EntropyPricing,
    ) -> Marketplace {
        Self::build(tables, keys, pricing)
    }

    fn build(tables: Vec<Table>, keys: Vec<Option<AttrSet>>, pricing: EntropyPricing) -> Self {
        let mut keys = keys.into_iter();
        let listings = tables
            .into_iter()
            .enumerate()
            .map(|(i, table)| {
                let schema = table.schema().clone();
                let default_key = keys
                    .next()
                    .flatten()
                    .unwrap_or_else(|| AttrSet::singleton(schema.attributes()[0].id));
                Arc::new(Listing {
                    meta: DatasetMeta {
                        id: DatasetId(i as u32),
                        name: table.name().to_string(),
                        schema,
                        num_rows: table.num_rows(),
                        default_key,
                        version: 0,
                    },
                    table: Arc::new(table),
                })
            })
            .collect();
        Marketplace {
            catalog: RwLock::new(Arc::new(CatalogState {
                listings,
                version: 0,
            })),
            pricing,
            accounts: Mutex::new(Accounts::default()),
            samples_sold: AtomicUsize::new(0),
            queries_sold: AtomicUsize::new(0),
        }
    }

    /// Pin the current catalog state. One `Arc` clone under a read lock;
    /// everything on the returned snapshot is lock-free thereafter.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            state: Arc::clone(&self.catalog.read().unwrap()),
            pricing: self.pricing,
        }
    }

    /// Number of listed datasets.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Global catalog version (bumped once per seller update).
    pub fn catalog_version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Free schema-level catalog (what the I-layer is built from).
    pub fn catalog(&self) -> Vec<DatasetMeta> {
        self.snapshot().metas()
    }

    /// Metadata of one dataset (at the current catalog version).
    pub fn meta(&self, id: DatasetId) -> Result<DatasetMeta> {
        self.snapshot().meta(id).cloned()
    }

    /// Full data access **for evaluation only** (the GP baseline and the
    /// "true correlation" reports); real shoppers pay via [`Self::execute`].
    pub fn full_table_for_evaluation(&self, id: DatasetId) -> Result<Arc<Table>> {
        self.snapshot().table(id).cloned()
    }

    /// Quote the price of a projection query without buying it.
    pub fn quote(&self, id: DatasetId, attrs: &AttrSet) -> Result<f64> {
        self.snapshot().quote(id, attrs)
    }

    /// Buy a correlated sample of dataset `id` keyed on `key_attrs` at `rate`.
    ///
    /// Returns the sample and its price (pro-rata of the full-projection
    /// price over the *whole schema*, since samples expose all attributes).
    /// Charged to the anonymous account; sessions buy via
    /// [`crate::session::Session::buy_sample`] instead.
    pub fn buy_sample(
        &self,
        id: DatasetId,
        key_attrs: &AttrSet,
        rate: f64,
        seed: u64,
    ) -> Result<(Table, f64)> {
        let (sample, price) = self.snapshot().sample(id, key_attrs, rate, seed)?;
        self.record_sale(None, SaleKind::Sample, price);
        Ok((sample, price))
    }

    /// Execute a purchase: returns the projected data and charges its price
    /// to the anonymous account.
    pub fn execute(&self, q: &ProjectionQuery) -> Result<(Table, f64)> {
        let (data, price) = self.snapshot().project(q)?;
        self.record_sale(None, SaleKind::Query, price);
        Ok((data, price))
    }

    /// Record a sale on an account stripe and bump the sold counters. The
    /// mutex guards only this append — never a catalog read.
    fn record_sale(&self, account: Option<SessionId>, kind: SaleKind, price: f64) {
        self.accounts
            .lock()
            .unwrap()
            .stripe(account)
            .push(Sale { kind, price });
        match kind {
            SaleKind::Sample => self.samples_sold.fetch_add(1, Ordering::Relaxed),
            SaleKind::Query => self.queries_sold.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Session-side purchase hooks (called by [`crate::session::Session`]
    /// after the pinned snapshot produced the goods and the session budget
    /// admitted the price).
    pub(crate) fn record_session_sample(&self, id: SessionId, price: f64) {
        self.record_sale(Some(id), SaleKind::Sample, price);
    }

    pub(crate) fn record_session_query(&self, id: SessionId, price: f64) {
        self.record_sale(Some(id), SaleKind::Query, price);
    }

    /// Seller-side update of a listed dataset: apply `delta` to the listing
    /// and bump its catalog [`DatasetMeta::version`] (and advertised row
    /// count). Returns the new version.
    ///
    /// Publishes a fresh immutable catalog state; snapshots pinned earlier
    /// keep shopping at their version. This is the marketplace end of the
    /// incremental-maintenance path: shoppers holding a join graph over
    /// samples of this dataset route the *same* delta through their graph's
    /// `apply_delta` instead of re-buying and recounting the sample.
    pub fn apply_update(&self, id: DatasetId, delta: &TableDelta) -> Result<u64> {
        let mut guard = self.catalog.write().unwrap();
        let cur = guard.as_ref();
        let listing = cur
            .listings
            .get(id.0 as usize)
            .ok_or_else(|| RelationError::UnknownDataset(id.to_string()))?;
        let table = listing.table.apply_delta(delta)?;
        let mut meta = listing.meta.clone();
        meta.num_rows = table.num_rows();
        meta.version += 1;
        let new_version = meta.version;
        let mut listings = cur.listings.clone();
        listings[id.0 as usize] = Arc::new(Listing {
            meta,
            table: Arc::new(table),
        });
        *guard = Arc::new(CatalogState {
            listings,
            version: cur.version + 1,
        });
        Ok(new_version)
    }

    /// Total revenue collected so far — deterministic per-account fold; see
    /// [`Accounts::revenue`].
    pub fn revenue(&self) -> f64 {
        self.accounts.lock().unwrap().revenue()
    }

    /// Revenue split `(samples, queries)` — same deterministic fold as
    /// [`Self::revenue`], restricted per sale kind.
    pub fn revenue_split(&self) -> (f64, f64) {
        let accounts = self.accounts.lock().unwrap();
        let fold = |kind: SaleKind| {
            let subtotal = |sales: &[Sale]| {
                sales
                    .iter()
                    .filter(|s| s.kind == kind)
                    .fold(0.0, |acc, s| acc + s.price)
            };
            accounts
                .sessions
                .iter()
                .fold(subtotal(&accounts.anonymous), |acc, (_, sales)| {
                    acc + subtotal(sales)
                })
        };
        (fold(SaleKind::Sample), fold(SaleKind::Query))
    }

    /// Revenue attributed to one session's stripe (0 if it never bought).
    pub fn session_revenue(&self, id: SessionId) -> f64 {
        let accounts = self.accounts.lock().unwrap();
        match accounts.sessions.binary_search_by_key(&id, |(s, _)| *s) {
            Ok(at) => accounts.sessions[at].1.iter().fold(0.0, |a, s| a + s.price),
            Err(_) => 0.0,
        }
    }

    /// `(samples sold, queries sold)`.
    pub fn sales(&self) -> (usize, usize) {
        (
            self.samples_sold.load(Ordering::Relaxed),
            self.queries_sold.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{Table, Value, ValueType};

    fn market() -> Marketplace {
        let zip = Table::from_rows(
            "zip",
            &[("mk_zip", ValueType::Str), ("mk_state", ValueType::Str)],
            (0..50)
                .map(|i| {
                    vec![
                        Value::str(format!("z{i}")),
                        Value::str(format!("s{}", i % 5)),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let disease = Table::from_rows(
            "disease",
            &[("mk_state", ValueType::Str), ("mk_cases", ValueType::Int)],
            (0..30)
                .map(|i| vec![Value::str(format!("s{}", i % 5)), Value::Int(i * 10)])
                .collect(),
        )
        .unwrap();
        Marketplace::new(vec![zip, disease], EntropyPricing::default())
    }

    #[test]
    fn catalog_is_free_and_complete() {
        let m = market();
        let cat = m.catalog();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat[0].name, "zip");
        assert_eq!(cat[1].num_rows, 30);
        assert_eq!(m.revenue(), 0.0);
        assert_eq!(m.catalog_version(), 0);
    }

    #[test]
    fn sample_purchase_charges_pro_rata() {
        let m = market();
        let full_price = m
            .quote(DatasetId(0), &AttrSet::from_names(["mk_zip", "mk_state"]))
            .unwrap();
        let (sample, price) = m
            .buy_sample(DatasetId(0), &AttrSet::from_names(["mk_zip"]), 0.4, 7)
            .unwrap();
        assert!(sample.num_rows() < 50);
        assert!((price - 0.4 * full_price).abs() < 1e-9);
        assert!((m.revenue() - price).abs() < 1e-12);
        assert_eq!(m.sales(), (1, 0));
        let (sample_rev, query_rev) = m.revenue_split();
        assert_eq!(sample_rev.to_bits(), price.to_bits());
        assert_eq!(query_rev, 0.0);
    }

    #[test]
    fn query_execution_projects_and_charges() {
        let m = market();
        let q = ProjectionQuery {
            dataset: DatasetId(1),
            dataset_name: "disease".into(),
            attrs: AttrSet::from_names(["mk_cases"]),
        };
        let (data, price) = m.execute(&q).unwrap();
        assert_eq!(data.num_attrs(), 1);
        assert_eq!(data.num_rows(), 30);
        assert!(price > 0.0);
        assert_eq!(m.sales(), (0, 1));
    }

    #[test]
    fn unknown_dataset_is_a_dedicated_error() {
        let m = market();
        let attrs = AttrSet::from_names(["mk_zip"]);
        let is_unknown_dataset =
            |e: RelationError| matches!(e, RelationError::UnknownDataset(ref d) if d == "D9");
        assert!(is_unknown_dataset(
            m.quote(DatasetId(9), &attrs).unwrap_err()
        ));
        assert!(is_unknown_dataset(
            m.buy_sample(DatasetId(9), &attrs, 0.5, 1).unwrap_err()
        ));
        assert!(is_unknown_dataset(m.meta(DatasetId(9)).unwrap_err()));
        assert!(is_unknown_dataset(
            m.full_table_for_evaluation(DatasetId(9)).unwrap_err()
        ));
        let q = ProjectionQuery {
            dataset: DatasetId(9),
            dataset_name: "nope".into(),
            attrs,
        };
        assert!(is_unknown_dataset(m.execute(&q).unwrap_err()));
    }

    #[test]
    fn apply_update_bumps_version_and_row_count() {
        let m = market();
        assert_eq!(m.meta(DatasetId(0)).unwrap().version, 0);
        let delta = TableDelta::new(
            vec![vec![Value::str("z_new"), Value::str("s0")]],
            vec![0, 1],
        );
        let v = m.apply_update(DatasetId(0), &delta).unwrap();
        assert_eq!(v, 1);
        let meta = m.meta(DatasetId(0)).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.num_rows, 49); // 50 − 2 deleted + 1 inserted
        assert_eq!(
            m.full_table_for_evaluation(DatasetId(0))
                .unwrap()
                .num_rows(),
            49
        );
        // Unknown datasets are rejected with the dedicated variant, and
        // other listings are untouched.
        assert!(matches!(
            m.apply_update(DatasetId(9), &delta).unwrap_err(),
            RelationError::UnknownDataset(ref d) if d == "D9"
        ));
        assert_eq!(m.meta(DatasetId(1)).unwrap().version, 0);
        assert_eq!(m.catalog_version(), 1);
    }

    #[test]
    fn snapshots_pin_a_version_across_updates() {
        let m = market();
        let pinned = m.snapshot();
        assert_eq!(pinned.version(), 0);
        let rows_before = pinned.meta(DatasetId(0)).unwrap().num_rows;
        let quote_before = pinned
            .quote(DatasetId(0), &AttrSet::from_names(["mk_zip"]))
            .unwrap();

        let delta = TableDelta::new(Vec::new(), (0..10).collect());
        m.apply_update(DatasetId(0), &delta).unwrap();

        // The live marketplace moved on; the pinned snapshot did not.
        assert_eq!(m.catalog_version(), 1);
        assert_eq!(pinned.version(), 0);
        assert_eq!(pinned.meta(DatasetId(0)).unwrap().num_rows, rows_before);
        let quote_after = pinned
            .quote(DatasetId(0), &AttrSet::from_names(["mk_zip"]))
            .unwrap();
        assert_eq!(quote_before.to_bits(), quote_after.to_bits());
        assert!(pinned.is_coherent());
        assert!(m.snapshot().is_coherent());
        assert_eq!(m.snapshot().meta(DatasetId(0)).unwrap().num_rows, 40);
    }

    #[test]
    fn projection_price_cheaper_than_whole_dataset() {
        let m = market();
        let part = m
            .quote(DatasetId(0), &AttrSet::from_names(["mk_state"]))
            .unwrap();
        let whole = m
            .quote(DatasetId(0), &AttrSet::from_names(["mk_zip", "mk_state"]))
            .unwrap();
        assert!(part < whole);
    }

    #[test]
    fn with_keys_overrides_default_sample_keys() {
        let m = market();
        let default_key = m.meta(DatasetId(1)).unwrap().default_key.clone();
        let tables: Vec<Table> = (0..2)
            .map(|i| {
                m.full_table_for_evaluation(DatasetId(i))
                    .unwrap()
                    .as_ref()
                    .clone()
            })
            .collect();
        let overridden = Marketplace::with_keys(
            tables,
            vec![None, Some(AttrSet::from_names(["mk_cases"]))],
            EntropyPricing::default(),
        );
        assert_eq!(overridden.meta(DatasetId(0)).unwrap().default_key.len(), 1);
        assert_ne!(
            overridden.meta(DatasetId(1)).unwrap().default_key,
            default_key
        );
    }
}
