//! Projection queries — the purchase unit of the marketplace.
//!
//! After the search picks target instances and attribute sets, DANCE hands the
//! shopper one projection query per instance (§2.1): `Q = π_A(D_i)`,
//! rendered as SQL for marketplaces with a SQL front-end (BigQuery-style).

use crate::catalog::DatasetId;
use dance_relation::AttrSet;
use std::fmt;

/// `π_attrs(dataset)` — one line of a purchase plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectionQuery {
    /// Target dataset.
    pub dataset: DatasetId,
    /// Dataset name (for SQL rendering).
    pub dataset_name: String,
    /// Projection attribute set `A_i`.
    pub attrs: AttrSet,
}

impl ProjectionQuery {
    /// Render as a SQL `SELECT` (attributes in sorted-name order, quoted).
    pub fn to_sql(&self) -> String {
        let cols: Vec<String> = self
            .attrs
            .iter()
            .map(|a| format!("\"{}\"", a.name()))
            .collect();
        format!("SELECT {} FROM \"{}\";", cols.join(", "), self.dataset_name)
    }
}

impl fmt::Display for ProjectionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: π_{}({})",
            self.dataset, self.attrs, self.dataset_name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering() {
        let q = ProjectionQuery {
            dataset: DatasetId(2),
            dataset_name: "orders".into(),
            attrs: AttrSet::from_names(["qr_totalprice", "qr_custkey"]),
        };
        let sql = q.to_sql();
        assert!(sql.starts_with("SELECT "));
        assert!(sql.contains("\"qr_custkey\""));
        assert!(sql.contains("\"qr_totalprice\""));
        assert!(sql.ends_with("FROM \"orders\";"));
    }

    #[test]
    fn display_mentions_dataset() {
        let q = ProjectionQuery {
            dataset: DatasetId(0),
            dataset_name: "zip".into(),
            attrs: AttrSet::from_names(["qr_zip"]),
        };
        assert!(q.to_string().contains("D0"));
        assert!(q.to_string().contains("zip"));
    }
}
