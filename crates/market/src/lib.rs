//! # dance-market — the data-marketplace substrate
//!
//! The paper's setting (§2.1): a marketplace `M` holds relational instances
//! `D = {D₁ … Dₙ}`, exposes **schema-level metadata** for free (that is what
//! the I-layer of the join graph is built from), sells **samples** to DANCE,
//! and sells **projection-query results** (`π_A(D_i)`) to shoppers under a
//! query-based pricing model \[6, 16\].
//!
//! * [`catalog`] — dataset identities and schema-level metadata.
//! * [`pricing`] — the entropy-based pricing model the experiments use \[16\]:
//!   `price(π_A(D)) = scale · (H(A) + floor·|A|) · rows^γ`. Entropy is
//!   monotone and subadditive over attribute sets, so the price satisfies the
//!   arbitrage-freedom conditions of Deep & Koutris \[8\] — property-tested in
//!   this crate.
//! * [`query`] — projection queries and their SQL rendering (what DANCE hands
//!   the shopper to execute against `M`).
//! * [`marketplace`] — the marketplace itself: a shared-readable (`&self`)
//!   core with an immutable, versioned catalog behind snapshot pinning,
//!   sample vending (priced pro-rata by sampling rate), query execution, and
//!   striped per-account revenue accounting.
//! * [`budget`] — the shopper's budget `B` with spend tracking.
//! * [`session`] — long-running acquisition sessions: per-session budgets,
//!   ledgers and seeds over one pinned catalog version, plus the
//!   [`SessionManager`] service shell (open/close, capacity, stats).
//! * [`wire`] — the length-prefixed binary frame protocol serving sessions
//!   over sockets (deterministic encode/decode, faults, table digests).
//! * [`server`] — the multi-worker TCP server: pipelining, bounded accept
//!   backlog with queue-or-reject policy, per-shopper token-bucket rate
//!   limits, combined service stats.
//! * [`client`] — a blocking, pipelining-capable wire client with optional
//!   transcript recording (what the determinism contract is stated over),
//!   bounded retries and automatic reconnect-and-resume.
//! * [`chaos`] — a deterministic, seeded fault-injecting transport for
//!   reproducing every hostile-network failure mode from a `u64` seed.

pub mod budget;
pub mod catalog;
pub mod chaos;
pub mod client;
pub mod marketplace;
pub mod pricing;
pub mod query;
pub mod server;
pub mod session;
pub mod wire;

pub use budget::{Budget, BudgetError};
pub use catalog::{DatasetId, DatasetMeta};
pub use chaos::{ChaosConfig, ChaosStream, InjectedFault, Transport};
pub use client::{RetryPolicy, WireClient, WireClientBuilder};
pub use marketplace::{CatalogSnapshot, Marketplace};
pub use pricing::{EntropyPricing, PricingModel};
pub use query::ProjectionQuery;
pub use server::{BacklogPolicy, RateLimit, Server, ServerConfig};
pub use session::{
    ManagerStats, Purchase, PurchaseKind, Session, SessionConfig, SessionError, SessionId,
    SessionManager, SessionManagerConfig, SessionReport, SessionResult, SessionToken,
};
pub use wire::{Fault, FaultCode, Opcode, Reply, Request, Response, StatsSnapshot, WireError};
