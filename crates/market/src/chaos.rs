//! `market::chaos` — a deterministic, seeded fault-injecting transport.
//!
//! Wraps any `Read + Write` stream in a [`ChaosStream`] that injects the
//! four failure classes a hostile network produces, on a schedule that is a
//! pure function of a `u64` seed and the I/O-operation sequence:
//!
//! | fault            | where   | what the peer experiences                  |
//! |------------------|---------|--------------------------------------------|
//! | connection reset | any op  | `ConnectionReset`; the stream is dead       |
//! | read truncation  | reads   | a prefix of the bytes, then the stream dies |
//! | short write      | writes  | frames arrive fragmented mid-header/payload |
//! | injected delay   | any op  | latency spikes (driving client timeouts)    |
//!
//! Every I/O operation consumes a fixed number of draws from a
//! [`splitmix64`]-based stream, so the fault schedule for operation `k` is
//! independent of which faults fired before it — two runs over the same
//! operation sequence inject identical faults, which is what makes every
//! failure mode of the serving layer reproducible from a seed (see
//! `tests/chaos_sweep.rs`).
//!
//! Poll timeouts (`WouldBlock`/`TimedOut` from a non-blocking read) are
//! passed through **without** consuming randomness: an idle connection that
//! ticks its read timeout thousands of times does not advance the schedule.
//!
//! The [`Transport`] trait is the small socket-option surface the client
//! and server need beyond `Read + Write`; it is implemented for
//! `TcpStream` and forwarded by `ChaosStream`, so chaos can be spliced in
//! on either side of a connection (client-side via
//! `WireClientBuilder::chaos`, server-side via `ServerConfig::chaos`).

use dance_relation::hash::splitmix64;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Golden-ratio increment of the splitmix64 sequence (the same stride the
/// session layer's `purchase_seed` uses).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The socket-option surface the serving layer needs from a stream, beyond
/// `Read + Write`. Implemented by `TcpStream` and forwarded by
/// [`ChaosStream`], so servers and clients are generic over real and
/// fault-injected transports.
pub trait Transport: Read + Write + Send {
    /// Set the blocking-read timeout (`None` blocks forever).
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Set the blocking-write timeout (`None` blocks forever).
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }
}

/// Per-stream fault rates and the seed that schedules them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability per I/O operation of a connection reset.
    pub reset_rate: f64,
    /// Probability per delivering read of a mid-frame truncation (a strict
    /// prefix of the bytes is delivered, then the stream dies).
    pub truncate_rate: f64,
    /// Probability per write of a short write (a strict prefix is written;
    /// the stream stays alive, so the peer sees fragmented frames).
    pub short_write_rate: f64,
    /// Probability per I/O operation of an injected delay.
    pub delay_rate: f64,
    /// Injected delays are uniform in `1..=max_delay_ms` milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// No faults at all — the identity transport (useful as a baseline).
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_rate: 0.0,
            truncate_rate: 0.0,
            short_write_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ms: 0,
        }
    }

    /// A hostile mix exercising every fault class: occasional resets and
    /// truncations, frequent fragmentation, small delays.
    pub fn hostile(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_rate: 0.04,
            truncate_rate: 0.04,
            short_write_rate: 0.25,
            delay_rate: 0.05,
            max_delay_ms: 3,
        }
    }

    /// The same rates under a sub-seed — how per-connection schedules are
    /// derived from one master seed (`salt` is e.g. the connection index).
    pub fn derive(&self, salt: u64) -> ChaosConfig {
        ChaosConfig {
            seed: splitmix64(self.seed ^ salt.wrapping_mul(GOLDEN)),
            ..*self
        }
    }
}

/// One injected fault, recorded in the stream's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The connection was reset.
    Reset,
    /// A read delivered only `kept` of the bytes, then the stream died.
    TruncatedRead {
        /// Bytes actually delivered.
        kept: usize,
    },
    /// A write accepted only `kept` bytes (stream stays alive).
    ShortWrite {
        /// Bytes actually written.
        kept: usize,
    },
    /// An injected delay of `ms` milliseconds.
    Delay {
        /// Sleep length in milliseconds.
        ms: u64,
    },
}

/// Cap on the recorded fault trace (counters keep counting past it).
const TRACE_CAP: usize = 4096;

/// A fault-injecting wrapper around any stream. See the module docs for
/// the fault taxonomy and the determinism contract.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    cfg: ChaosConfig,
    state: u64,
    dead: bool,
    ops: u64,
    faults: u64,
    trace: Vec<InjectedFault>,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner` with the fault schedule of `cfg`.
    pub fn new(inner: S, cfg: ChaosConfig) -> ChaosStream<S> {
        ChaosStream {
            inner,
            cfg,
            state: splitmix64(cfg.seed ^ 0xC4A0_5BAD),
            dead: false,
            ops: 0,
            faults: 0,
            trace: Vec::new(),
        }
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether an injected reset or truncation has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// I/O operations seen (reads that delivered data, plus writes).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total faults injected (delays included).
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// The injected-fault trace, in schedule order (capped at 4096 entries;
    /// [`ChaosStream::fault_count`] keeps counting past the cap).
    pub fn trace(&self) -> &[InjectedFault] {
        &self.trace
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        splitmix64(self.state)
    }

    /// One uniform draw in `[0, 1)`; always consumes exactly one step of
    /// the sequence so schedules stay aligned across rate settings.
    fn chance(&mut self, p: f64) -> bool {
        let draw = (self.next() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        draw < p
    }

    fn record(&mut self, fault: InjectedFault) {
        self.faults += 1;
        if self.trace.len() < TRACE_CAP {
            self.trace.push(fault);
        }
    }

    /// The fixed three draws every operation consumes: delay?, delay length,
    /// reset?. Returns `true` when the operation dies in a reset.
    fn pre_op(&mut self) -> bool {
        self.ops += 1;
        let delay = self.chance(self.cfg.delay_rate);
        let len_draw = self.next();
        if delay && self.cfg.max_delay_ms > 0 {
            let ms = 1 + len_draw % self.cfg.max_delay_ms;
            self.record(InjectedFault::Delay { ms });
            std::thread::sleep(Duration::from_millis(ms));
        }
        if self.chance(self.cfg.reset_rate) {
            self.dead = true;
            self.record(InjectedFault::Reset);
            return true;
        }
        false
    }
}

fn reset_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "chaos: injected connection reset",
    )
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        match self.inner.read(buf) {
            // Poll ticks pass through without advancing the schedule.
            Err(e) if is_poll_timeout(&e) => Err(e),
            Err(e) => Err(e),
            Ok(n) => {
                if self.pre_op() {
                    // The bytes are lost in the crash — exactly what a reset
                    // racing a delivery looks like from this side.
                    return Err(reset_err());
                }
                let truncate = self.chance(self.cfg.truncate_rate);
                let len_draw = self.next();
                if truncate && n > 1 {
                    let kept = 1 + (len_draw as usize) % (n - 1);
                    self.dead = true;
                    self.record(InjectedFault::TruncatedRead { kept });
                    return Ok(kept);
                }
                Ok(n)
            }
        }
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(reset_err());
        }
        if self.pre_op() {
            return Err(reset_err());
        }
        let short = self.chance(self.cfg.short_write_rate);
        let len_draw = self.next();
        if short && buf.len() > 1 {
            let kept = 1 + (len_draw as usize) % (buf.len() - 1);
            let n = self.inner.write(&buf[..kept])?;
            self.record(InjectedFault::ShortWrite { kept: n });
            return Ok(n);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(reset_err());
        }
        self.inner.flush()
    }
}

impl<S: Transport> Transport for ChaosStream<S> {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory stream: reads drain a pre-filled buffer, writes append
    /// to an output buffer. Deterministic by construction, so chaos-schedule
    /// determinism is observable byte-for-byte.
    struct MemStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl MemStream {
        fn with_input(bytes: Vec<u8>) -> MemStream {
            MemStream {
                input: std::io::Cursor::new(bytes),
                output: Vec::new(),
            }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(seed: u64, cfg_of: fn(u64) -> ChaosConfig) -> (Vec<InjectedFault>, Vec<u8>, Vec<u8>) {
        let input: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let mut s = ChaosStream::new(MemStream::with_input(input), cfg_of(seed));
        let mut delivered = Vec::new();
        let mut scratch = [0u8; 32];
        // Interleave reads and writes until the stream dies or input drains.
        for round in 0..64 {
            match s.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => delivered.extend_from_slice(&scratch[..n]),
                Err(_) => break,
            }
            let chunk = [round as u8; 24];
            if s.write(&chunk).is_err() {
                break;
            }
        }
        let trace = s.trace().to_vec();
        let written = s.inner.output.clone();
        (trace, delivered, written)
    }

    fn hostile_no_delay(seed: u64) -> ChaosConfig {
        ChaosConfig {
            delay_rate: 0.0,
            ..ChaosConfig::hostile(seed)
        }
    }

    #[test]
    fn same_seed_same_schedule_bytes_and_trace() {
        for seed in [1u64, 7, 0xDA2CE, 0xFEED_BEEF] {
            let a = drive(seed, hostile_no_delay);
            let b = drive(seed, hostile_no_delay);
            assert_eq!(a.0, b.0, "seed {seed}: fault traces differ");
            assert_eq!(a.1, b.1, "seed {seed}: delivered bytes differ");
            assert_eq!(a.2, b.2, "seed {seed}: written bytes differ");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = drive(1, hostile_no_delay);
        let b = drive(2, hostile_no_delay);
        assert_ne!((a.0, a.1), (b.0, b.1));
    }

    #[test]
    fn quiet_config_is_the_identity_transport() {
        let (trace, delivered, written) = drive(9, ChaosConfig::quiet);
        assert!(trace.is_empty());
        let input: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(delivered, input);
        assert!(!written.is_empty());
    }

    #[test]
    fn dead_streams_stay_dead() {
        let cfg = ChaosConfig {
            reset_rate: 1.0,
            ..ChaosConfig::quiet(3)
        };
        let mut s = ChaosStream::new(MemStream::with_input(vec![1, 2, 3]), cfg);
        let mut buf = [0u8; 8];
        assert_eq!(
            s.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert!(s.is_dead());
        assert_eq!(
            s.write(&[1]).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(s.fault_count(), 1, "post-death ops inject nothing new");
    }

    #[test]
    fn truncation_delivers_a_strict_prefix_then_kills() {
        let cfg = ChaosConfig {
            truncate_rate: 1.0,
            ..ChaosConfig::quiet(5)
        };
        let mut s = ChaosStream::new(MemStream::with_input((0..64).collect()), cfg);
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).unwrap();
        assert!((1..64).contains(&n), "a strict prefix: got {n}");
        assert!(s.is_dead());
        assert!(matches!(s.trace()[0], InjectedFault::TruncatedRead { kept } if kept == n));
    }

    #[test]
    fn short_writes_fragment_but_do_not_kill() {
        let cfg = ChaosConfig {
            short_write_rate: 1.0,
            ..ChaosConfig::quiet(11)
        };
        let mut s = ChaosStream::new(MemStream::with_input(Vec::new()), cfg);
        let payload = [7u8; 100];
        let mut written = 0;
        while written < payload.len() {
            written += s.write(&payload[written..]).unwrap();
        }
        assert_eq!(s.inner().output, payload);
        assert!(s.fault_count() >= 1, "at least one short write fired");
        assert!(!s.is_dead());
    }

    #[test]
    fn derive_gives_distinct_per_connection_schedules() {
        let base = ChaosConfig::hostile(42);
        let a = base.derive(0);
        let b = base.derive(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.reset_rate, base.reset_rate);
        // Deriving is itself deterministic.
        assert_eq!(base.derive(7), base.derive(7));
    }
}
