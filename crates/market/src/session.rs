//! Long-running, concurrency-safe acquisition sessions over one shared
//! [`Marketplace`].
//!
//! The paper's shopper is a single loop over `Dance::search`; a production
//! marketplace serves **many independent shoppers at once**, each running a
//! sample-then-commit loop ("Try Before You Buy"-style) against one live
//! catalog. A [`Session`] is that boundary:
//!
//! * **Version pinning** — at open time the session pins a
//!   [`CatalogSnapshot`]; every quote, sample and purchase for the session's
//!   lifetime is served at that version, even while sellers keep publishing
//!   updates through [`Marketplace::apply_update`]. A snapshot is one
//!   immutable `Arc`, so no session ever observes a torn catalog.
//! * **Budget + ledger isolation** — each session carries its own
//!   [`Budget`] and purchase ledger (DAVED's multi-buyer setting). Every
//!   purchase is admitted by the session budget first, then recorded both in
//!   the session ledger and on the session's revenue stripe in the
//!   marketplace, so `Σ` per-session ledger spend reconciles exactly with
//!   [`Marketplace::revenue`].
//! * **Determinism** — a session's behaviour is a pure function of
//!   `(pinned snapshot, session seed, the call sequence)`. Sample draws are
//!   seeded per purchase via [`purchase_seed`], so a session run concurrently
//!   with hundreds of others produces a bit-identical [`SessionReport`] to
//!   the same session run alone.
//!
//! The read path is lock-free by construction: a session owns its snapshot,
//! budget and ledger outright, and only the money-moving hooks
//! (`record_session_*` in [`Marketplace`]) ever touch a mutex — a CI
//! grep-guard keeps mutexes out of this file entirely, matching the
//! `multichain.rs` lock guard.
//!
//! [`SessionManager`] adds the service shell: open/close, per-session stats,
//! and graceful rejection once `max_sessions` are in flight.

use crate::budget::{Budget, BudgetError};
use crate::catalog::{DatasetId, DatasetMeta};
use crate::marketplace::{CatalogSnapshot, Marketplace};
use crate::query::ProjectionQuery;
use dance_relation::hash::splitmix64;
use dance_relation::{AttrSet, RelationError, Table};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stable identifier of one acquisition session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// An unguessable handle for re-attaching a live session to a fresh
/// connection (the wire layer's `ResumeSession`).
///
/// The token is derived from the session id and a per-manager secret pair
/// as the XOR of two independent [`splitmix64`] bijections —
/// `sm(s₁ ⊕ f(id)) ⊕ sm(s₂ ⊕ g(id))` — so one observed `(id, token)` pair
/// does not invert to the secret the way a single bijection would. It is
/// *unguessable without the secret*, not cryptographic: the threat model is
/// a shopper probing for other shoppers' session ids, not an adversary
/// with offline compute parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionToken(pub u64);

impl fmt::Display for SessionToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{:016x}", self.0)
    }
}

/// Per-purchase seed stride (the golden-ratio increment, as in
/// `dance_core::chain_seed`): purchase `k` of a session seeded `s` draws its
/// sample with `splitmix64(s ⊕ k·STRIDE)`, so purchase streams are
/// decorrelated across both sessions and purchase indices while staying a
/// pure function of `(session seed, purchase index)`.
const PURCHASE_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The sample-draw seed for purchase number `seq` of a session seeded `seed`.
pub fn purchase_seed(seed: u64, seq: u64) -> u64 {
    splitmix64(seed ^ seq.wrapping_mul(PURCHASE_SEED_STRIDE))
}

/// Errors surfaced by the session layer.
#[derive(Debug)]
pub enum SessionError {
    /// The manager is at capacity; retry later (graceful rejection).
    AtCapacity {
        /// Sessions currently open.
        open: usize,
        /// Configured capacity.
        max: usize,
    },
    /// The session budget refused the purchase.
    Budget(BudgetError),
    /// The marketplace refused the operation (unknown dataset, bad attrs…).
    Market(RelationError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::AtCapacity { open, max } => {
                write!(f, "session manager at capacity: {open}/{max} open")
            }
            SessionError::Budget(e) => write!(f, "session budget: {e}"),
            SessionError::Market(e) => write!(f, "marketplace: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Budget(e) => Some(e),
            SessionError::Market(e) => Some(e),
            SessionError::AtCapacity { .. } => None,
        }
    }
}

impl From<BudgetError> for SessionError {
    fn from(e: BudgetError) -> Self {
        SessionError::Budget(e)
    }
}

impl From<RelationError> for SessionError {
    fn from(e: RelationError) -> Self {
        SessionError::Market(e)
    }
}

/// Convenience alias for session-layer results.
pub type SessionResult<T> = Result<T, SessionError>;

/// What one session purchase bought.
#[derive(Debug, Clone, PartialEq)]
pub enum PurchaseKind {
    /// A correlated sample at the given rate, keyed on the given attributes.
    Sample {
        /// Sampling rate `p`.
        rate: f64,
        /// Key attributes the sample was drawn on.
        key: AttrSet,
    },
    /// A projection-query result.
    Projection {
        /// Projected attributes.
        attrs: AttrSet,
    },
}

/// One entry of a session's purchase ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct Purchase {
    /// Which dataset the purchase hit.
    pub dataset: DatasetId,
    /// Sample or projection.
    pub kind: PurchaseKind,
    /// Price paid (at the pinned catalog version).
    pub price: f64,
}

/// Immutable end-of-session summary: the determinism contract is that this
/// report is bit-identical for a given `(pinned version, seed, call
/// sequence)` regardless of what other sessions do concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Session identity.
    pub id: SessionId,
    /// Session seed.
    pub seed: u64,
    /// Catalog version the session was pinned at.
    pub catalog_version: u64,
    /// Every purchase, in order.
    pub purchases: Vec<Purchase>,
    /// Total spend (`== Budget::spent()` and `== Σ purchase prices` in
    /// ledger order — the same fold the marketplace's stripe performs).
    pub spent: f64,
    /// Budget headroom left at close.
    pub remaining: f64,
}

/// Knobs for one session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// The session's budget `B`.
    pub budget: f64,
    /// Master seed for the session's sample draws (and, by convention, the
    /// shopper's seeded searches).
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            budget: f64::INFINITY,
            seed: 0xDA2CE,
        }
    }
}

/// One shopper's long-running acquisition session. Not `Sync` by design —
/// a session belongs to one shopper thread; concurrency happens *across*
/// sessions, which share nothing mutable.
#[derive(Debug)]
pub struct Session {
    id: SessionId,
    seed: u64,
    market: Arc<Marketplace>,
    pinned: CatalogSnapshot,
    budget: Budget,
    ledger: Vec<Purchase>,
    shared: Arc<ManagerState>,
}

impl Session {
    /// Session identity.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The catalog version this session is pinned at.
    pub fn pinned_version(&self) -> u64 {
        self.pinned.version()
    }

    /// The pinned catalog snapshot (shared, lock-free).
    pub fn snapshot(&self) -> &CatalogSnapshot {
        &self.pinned
    }

    /// The session's budget state.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The purchase ledger so far.
    pub fn ledger(&self) -> &[Purchase] {
        &self.ledger
    }

    /// Free schema-level catalog at the pinned version.
    pub fn catalog(&self) -> Vec<DatasetMeta> {
        self.pinned.metas()
    }

    /// Metadata of one dataset at the pinned version.
    pub fn meta(&self, id: DatasetId) -> SessionResult<&DatasetMeta> {
        Ok(self.pinned.meta(id)?)
    }

    /// Quote a projection at the pinned version's prices (free).
    pub fn quote(&self, id: DatasetId, attrs: &AttrSet) -> SessionResult<f64> {
        Ok(self.pinned.quote(id, attrs)?)
    }

    /// Quote a batch of projections in one call (free). The pinned
    /// snapshot's listings are resolved once per item and duplicate
    /// `(dataset, attrs)` pairs are answered from a per-batch memo —
    /// bit-identical to, and cheaper than, one [`Session::quote`] per item.
    /// This is what the wire protocol's `QuoteBatch` opcode lands on.
    pub fn quote_batch(&self, items: &[(DatasetId, AttrSet)]) -> SessionResult<Vec<f64>> {
        Ok(self.pinned.quote_batch(items)?)
    }

    /// Re-pin the session to the marketplace's current catalog version (an
    /// explicit shopper decision — e.g. after learning a seller published a
    /// relevant update). Returns the new pinned version.
    pub fn repin(&mut self) -> u64 {
        self.pinned = self.market.snapshot();
        self.pinned.version()
    }

    /// Buy a correlated sample of `id` keyed on `key_attrs` at `rate`,
    /// seeded deterministically from the session seed and purchase index.
    ///
    /// Admission order: price the goods on the pinned snapshot, charge the
    /// session budget, and only then record revenue — a refused purchase
    /// leaves both the ledger and the marketplace untouched.
    pub fn buy_sample(
        &mut self,
        id: DatasetId,
        key_attrs: &AttrSet,
        rate: f64,
    ) -> SessionResult<(Table, f64)> {
        let seed = purchase_seed(self.seed, self.ledger.len() as u64);
        let (sample, price) = self.pinned.sample(id, key_attrs, rate, seed)?;
        self.budget.try_spend(price)?;
        self.market.record_session_sample(self.id, price);
        self.ledger.push(Purchase {
            dataset: id,
            kind: PurchaseKind::Sample {
                rate,
                key: key_attrs.clone(),
            },
            price,
        });
        Ok((sample, price))
    }

    /// Execute a projection purchase at the pinned version.
    pub fn execute(&mut self, q: &ProjectionQuery) -> SessionResult<(Table, f64)> {
        let (data, price) = self.pinned.project(q)?;
        self.budget.try_spend(price)?;
        self.market.record_session_query(self.id, price);
        self.ledger.push(Purchase {
            dataset: q.dataset,
            kind: PurchaseKind::Projection {
                attrs: q.attrs.clone(),
            },
            price,
        });
        Ok((data, price))
    }

    /// Execute a projection purchase addressed by dataset id alone — the
    /// wire path, where only interned ids travel: the dataset name is
    /// resolved from the pinned snapshot.
    pub fn execute_by_id(&mut self, id: DatasetId, attrs: &AttrSet) -> SessionResult<(Table, f64)> {
        let dataset_name = self.pinned.meta(id)?.name.clone();
        self.execute(&ProjectionQuery {
            dataset: id,
            dataset_name,
            attrs: attrs.clone(),
        })
    }

    /// The session's summary so far (also what [`SessionManager::close`]
    /// returns).
    pub fn report(&self) -> SessionReport {
        SessionReport {
            id: self.id,
            seed: self.seed,
            catalog_version: self.pinned.version(),
            purchases: self.ledger.clone(),
            spent: self.budget.spent(),
            remaining: self.budget.remaining(),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared.open.fetch_sub(1, Ordering::AcqRel);
        self.shared.closed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared open/close accounting between a manager and its sessions.
#[derive(Debug, Default)]
struct ManagerState {
    open: AtomicUsize,
    opened: AtomicUsize,
    closed: AtomicUsize,
    rejected: AtomicUsize,
    peak_open: AtomicUsize,
    reclaimed: AtomicUsize,
    next_id: AtomicU64,
}

/// Knobs for the session service.
#[derive(Debug, Clone, Copy)]
pub struct SessionManagerConfig {
    /// Hard cap on simultaneously open sessions; opens beyond it are
    /// rejected gracefully with [`SessionError::AtCapacity`].
    pub max_sessions: usize,
    /// Idle lease for sessions orphaned by a dead connection. `Some(secs)`
    /// lets the serving layer park a disconnected session for resumption,
    /// reclaiming its capacity slot once no connection re-attaches within
    /// the lease. `None` (the default) keeps the pre-resumption behaviour:
    /// a dropped connection drops its sessions immediately.
    pub lease_secs: Option<f64>,
    /// Explicit secret pair for [`SessionManager::session_token`]. `None`
    /// (the default) derives a fresh secret from wall-clock and address
    /// entropy at construction; tests pin it for deterministic tokens.
    pub token_secret: Option<(u64, u64)>,
}

impl Default for SessionManagerConfig {
    fn default() -> Self {
        SessionManagerConfig {
            max_sessions: 1024,
            lease_secs: None,
            token_secret: None,
        }
    }
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerStats {
    /// Sessions currently open.
    pub open: usize,
    /// Sessions ever opened.
    pub opened: usize,
    /// Sessions closed (explicitly or by drop).
    pub closed: usize,
    /// Opens rejected at capacity.
    pub rejected: usize,
    /// High-water mark of simultaneously open sessions.
    pub peak_open: usize,
    /// Parked sessions reclaimed after their idle lease expired.
    pub reclaimed: usize,
}

/// The acquisition service: opens, closes and counts sessions over one
/// shared marketplace. Cheap to share (`&self` everywhere) — a server would
/// hold one in an `Arc` next to its listener.
#[derive(Debug)]
pub struct SessionManager {
    market: Arc<Marketplace>,
    state: Arc<ManagerState>,
    cfg: SessionManagerConfig,
    secret: (u64, u64),
}

impl SessionManager {
    /// A manager over `market` with the given capacity config.
    pub fn new(market: Arc<Marketplace>, cfg: SessionManagerConfig) -> SessionManager {
        let state = Arc::new(ManagerState::default());
        let secret = cfg.token_secret.unwrap_or_else(|| {
            // Wall-clock nanos plus the state allocation's address: enough
            // entropy that tokens differ across processes and managers,
            // without reaching for an OS randomness dependency.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let addr = Arc::as_ptr(&state) as u64;
            (
                splitmix64(nanos ^ 0x5EC2_E700_0000_0001),
                splitmix64(addr ^ nanos.rotate_left(32)),
            )
        });
        SessionManager {
            market,
            state,
            cfg,
            secret,
        }
    }

    /// The marketplace this manager serves.
    pub fn market(&self) -> &Arc<Marketplace> {
        &self.market
    }

    /// The idle lease for orphaned sessions, if resumption is enabled.
    /// Negative or non-finite configs clamp to a zero lease (reclaim at the
    /// first sweep).
    pub fn lease(&self) -> Option<Duration> {
        self.cfg.lease_secs.map(|s| {
            if s.is_finite() && s > 0.0 {
                Duration::from_secs_f64(s)
            } else {
                Duration::ZERO
            }
        })
    }

    /// The resumption token for `id` under this manager's secret — a pure
    /// function, so the same session always presents the same token, and
    /// replays can recompute it from an observed session id.
    pub fn session_token(&self, id: SessionId) -> SessionToken {
        let (s1, s2) = self.secret;
        let a = splitmix64(s1 ^ id.0.wrapping_mul(PURCHASE_SEED_STRIDE));
        let b = splitmix64(s2 ^ id.0.rotate_left(17).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        SessionToken(a ^ b)
    }

    /// Record `n` parked sessions reclaimed by a lease sweep (the serving
    /// layer owns the parking registry; the manager owns the counter so
    /// [`ManagerStats`] pins reclamation).
    pub fn record_reclaimed(&self, n: usize) {
        if n > 0 {
            self.state.reclaimed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Open a session: admission-check capacity, pin the current catalog
    /// version, allocate an id and a fresh budget.
    pub fn open(&self, cfg: SessionConfig) -> SessionResult<Session> {
        let snapshot = self.market.snapshot();
        self.open_at(cfg, snapshot)
    }

    /// Open a session pinned at an explicit `snapshot` instead of the
    /// marketplace's current version. This is how a transcript replay pins
    /// the exact catalog state a live session saw — sessions are pure
    /// functions of `(pinned snapshot, seed, call sequence)`, so replaying
    /// the calls against the same snapshot reproduces every response
    /// bitwise even after sellers have published further updates.
    pub fn open_at(&self, cfg: SessionConfig, snapshot: CatalogSnapshot) -> SessionResult<Session> {
        // Reserve a slot with a CAS loop so concurrent opens can never
        // overshoot the cap.
        let reserved = self
            .state
            .open
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |open| {
                (open < self.cfg.max_sessions).then_some(open + 1)
            });
        if let Err(open) = reserved {
            self.state.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::AtCapacity {
                open,
                max: self.cfg.max_sessions,
            });
        }
        self.state.opened.fetch_add(1, Ordering::Relaxed);
        self.state
            .peak_open
            .fetch_max(reserved.unwrap_or(0) + 1, Ordering::Relaxed);
        let id = SessionId(self.state.next_id.fetch_add(1, Ordering::Relaxed));
        Ok(Session {
            id,
            seed: cfg.seed,
            market: Arc::clone(&self.market),
            pinned: snapshot,
            budget: Budget::new(cfg.budget),
            ledger: Vec::new(),
            shared: Arc::clone(&self.state),
        })
    }

    /// Close a session, returning its final report. (Dropping a session
    /// releases its slot too; `close` is the polite way that hands the
    /// report back.)
    pub fn close(&self, session: Session) -> SessionReport {
        session.report()
        // `session` drops here: open−1, closed+1.
    }

    /// Service counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            open: self.state.open.load(Ordering::Acquire),
            opened: self.state.opened.load(Ordering::Relaxed),
            closed: self.state.closed.load(Ordering::Relaxed),
            rejected: self.state.rejected.load(Ordering::Relaxed),
            peak_open: self.state.peak_open.load(Ordering::Relaxed),
            reclaimed: self.state.reclaimed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::EntropyPricing;
    use dance_relation::{TableDelta, Value, ValueType};

    fn market() -> Arc<Marketplace> {
        let a = Table::from_rows(
            "se_a",
            &[("se_k", ValueType::Int), ("se_x", ValueType::Str)],
            (0..60)
                .map(|i| vec![Value::Int(i % 6), Value::str(format!("x{}", i % 4))])
                .collect(),
        )
        .unwrap();
        let b = Table::from_rows(
            "se_b",
            &[("se_k", ValueType::Int), ("se_y", ValueType::Int)],
            (0..40)
                .map(|i| vec![Value::Int(i % 6), Value::Int(i * 3)])
                .collect(),
        )
        .unwrap();
        Arc::new(Marketplace::new(vec![a, b], EntropyPricing::default()))
    }

    fn manager(max: usize) -> SessionManager {
        SessionManager::new(
            market(),
            SessionManagerConfig {
                max_sessions: max,
                ..SessionManagerConfig::default()
            },
        )
    }

    #[test]
    fn lifecycle_open_shop_close() {
        let mgr = manager(4);
        let mut s = mgr
            .open(SessionConfig {
                budget: 100.0,
                seed: 7,
            })
            .unwrap();
        assert_eq!(s.pinned_version(), 0);
        assert_eq!(s.catalog().len(), 2);

        let key = AttrSet::from_names(["se_k"]);
        let (sample, p1) = s.buy_sample(DatasetId(0), &key, 0.5).unwrap();
        assert!(sample.num_rows() > 0 && p1 > 0.0);
        let q = ProjectionQuery {
            dataset: DatasetId(1),
            dataset_name: "se_b".into(),
            attrs: AttrSet::from_names(["se_y"]),
        };
        let (_, p2) = s.execute(&q).unwrap();
        assert!((s.budget().spent() - (p1 + p2)).abs() < 1e-12);
        assert_eq!(s.ledger().len(), 2);

        let report = mgr.close(s);
        assert_eq!(report.purchases.len(), 2);
        assert_eq!(report.spent.to_bits(), (p1 + p2).to_bits());
        // The session stripe reconciles exactly with the session ledger.
        assert_eq!(
            mgr.market().session_revenue(report.id).to_bits(),
            report.spent.to_bits()
        );
        assert_eq!(mgr.market().revenue().to_bits(), report.spent.to_bits());
        let stats = mgr.stats();
        assert_eq!((stats.open, stats.opened, stats.closed), (0, 1, 1));
    }

    #[test]
    fn capacity_rejection_is_graceful_and_slots_recycle() {
        let mgr = manager(2);
        let s0 = mgr.open(SessionConfig::default()).unwrap();
        let _s1 = mgr.open(SessionConfig::default()).unwrap();
        match mgr.open(SessionConfig::default()) {
            Err(SessionError::AtCapacity { open, max }) => {
                assert_eq!((open, max), (2, 2));
            }
            other => panic!("expected AtCapacity, got {other:?}"),
        }
        assert_eq!(mgr.stats().rejected, 1);
        drop(s0); // releasing a slot (even without close) re-admits
        assert!(mgr.open(SessionConfig::default()).is_ok());
        assert_eq!(mgr.stats().peak_open, 2);
    }

    #[test]
    fn budget_isolation_blocks_only_the_poor_session() {
        let mgr = manager(4);
        let mut poor = mgr
            .open(SessionConfig {
                budget: 1e-12,
                seed: 1,
            })
            .unwrap();
        let mut rich = mgr
            .open(SessionConfig {
                budget: 1e6,
                seed: 2,
            })
            .unwrap();
        let key = AttrSet::from_names(["se_k"]);
        let err = poor.buy_sample(DatasetId(0), &key, 0.5).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Budget(BudgetError::OverBudget { .. })
        ));
        assert!(poor.ledger().is_empty(), "refused purchase leaves no trace");
        assert_eq!(mgr.market().revenue(), 0.0);
        rich.buy_sample(DatasetId(0), &key, 0.5).unwrap();
        assert!(mgr.market().revenue() > 0.0);
    }

    #[test]
    fn sessions_pin_versions_and_repin_explicitly() {
        let mgr = manager(4);
        let mut s = mgr
            .open(SessionConfig {
                budget: 100.0,
                seed: 3,
            })
            .unwrap();
        let quote_before = s
            .quote(DatasetId(0), &AttrSet::from_names(["se_x"]))
            .unwrap();

        let delta = TableDelta::new(Vec::new(), (0..30).collect());
        mgr.market().apply_update(DatasetId(0), &delta).unwrap();

        // Pinned: same version, same quote, coherent snapshot.
        assert_eq!(s.pinned_version(), 0);
        let quote_pinned = s
            .quote(DatasetId(0), &AttrSet::from_names(["se_x"]))
            .unwrap();
        assert_eq!(quote_before.to_bits(), quote_pinned.to_bits());
        assert!(s.snapshot().is_coherent());

        // Re-pinning is an explicit shopper decision.
        assert_eq!(s.repin(), 1);
        assert_eq!(s.meta(DatasetId(0)).unwrap().num_rows, 30);
    }

    #[test]
    fn quote_batch_matches_per_item_quotes_bitwise() {
        let mgr = manager(4);
        let s = mgr.open(SessionConfig::default()).unwrap();
        let items = vec![
            (DatasetId(0), AttrSet::from_names(["se_x"])),
            (DatasetId(1), AttrSet::from_names(["se_y"])),
            (DatasetId(0), AttrSet::from_names(["se_k", "se_x"])),
            // Duplicate of item 0: answered from the batch memo.
            (DatasetId(0), AttrSet::from_names(["se_x"])),
        ];
        let batch = s.quote_batch(&items).unwrap();
        assert_eq!(batch.len(), items.len());
        for ((id, attrs), price) in items.iter().zip(&batch) {
            let solo = s.quote(*id, attrs).unwrap();
            assert_eq!(solo.to_bits(), price.to_bits());
        }
        assert_eq!(batch[0].to_bits(), batch[3].to_bits());
        // An unknown dataset anywhere in the batch fails the whole batch.
        let bad = vec![(DatasetId(99), AttrSet::from_names(["se_x"]))];
        assert!(matches!(
            s.quote_batch(&bad),
            Err(SessionError::Market(RelationError::UnknownDataset(_)))
        ));
    }

    #[test]
    fn execute_by_id_matches_execute() {
        let mgr = manager(4);
        let attrs = AttrSet::from_names(["se_y"]);
        let mut by_query = mgr.open(SessionConfig::default()).unwrap();
        let (t1, p1) = by_query
            .execute(&ProjectionQuery {
                dataset: DatasetId(1),
                dataset_name: "se_b".into(),
                attrs: attrs.clone(),
            })
            .unwrap();
        let mut by_id = mgr.open(SessionConfig::default()).unwrap();
        let (t2, p2) = by_id.execute_by_id(DatasetId(1), &attrs).unwrap();
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(t1.num_rows(), t2.num_rows());
    }

    #[test]
    fn open_at_pins_an_explicit_snapshot_for_replay() {
        let mgr = manager(4);
        let v0 = mgr.market().snapshot();
        let key = AttrSet::from_names(["se_k"]);
        let cfg = SessionConfig {
            budget: 100.0,
            seed: 17,
        };
        let mut live = mgr.open(cfg).unwrap();
        let (t_live, p_live) = live.buy_sample(DatasetId(0), &key, 0.4).unwrap();

        // A seller update lands; the catalog moves on.
        let delta = TableDelta::new(Vec::new(), (0..30).collect());
        mgr.market().apply_update(DatasetId(0), &delta).unwrap();

        // Replaying the same calls against the captured snapshot reproduces
        // the purchase bitwise; a fresh `open` (pinned at v1) does not.
        let mut replay = mgr.open_at(cfg, v0).unwrap();
        assert_eq!(replay.pinned_version(), 0);
        let (t_replay, p_replay) = replay.buy_sample(DatasetId(0), &key, 0.4).unwrap();
        assert_eq!(p_live.to_bits(), p_replay.to_bits());
        assert_eq!(t_live.num_rows(), t_replay.num_rows());
        let mut fresh = mgr.open(cfg).unwrap();
        assert_eq!(fresh.pinned_version(), 1);
        let (t_fresh, _) = fresh.buy_sample(DatasetId(0), &key, 0.4).unwrap();
        assert_ne!(t_live.num_rows(), t_fresh.num_rows());
    }

    #[test]
    fn session_tokens_are_stable_distinct_and_secret_dependent() {
        let cfg = SessionManagerConfig {
            max_sessions: 4,
            token_secret: Some((0xA5A5_0001, 0x5C5C_0002)),
            ..SessionManagerConfig::default()
        };
        let mgr = SessionManager::new(market(), cfg);
        // Pure function of the id under a fixed secret.
        assert_eq!(
            mgr.session_token(SessionId(3)),
            mgr.session_token(SessionId(3))
        );
        let mut seen = std::collections::HashSet::new();
        for id in 0..64u64 {
            assert!(seen.insert(mgr.session_token(SessionId(id)).0));
        }
        // A different secret yields a different token space.
        let other = SessionManager::new(
            market(),
            SessionManagerConfig {
                token_secret: Some((0xA5A5_0001, 0x5C5C_0003)),
                ..cfg
            },
        );
        assert_ne!(
            mgr.session_token(SessionId(3)),
            other.session_token(SessionId(3))
        );
        // And the default secret is fresh per manager.
        let d1 = SessionManager::new(market(), SessionManagerConfig::default());
        let d2 = SessionManager::new(market(), SessionManagerConfig::default());
        assert_ne!(
            d1.session_token(SessionId(3)),
            d2.session_token(SessionId(3))
        );
    }

    #[test]
    fn lease_config_clamps_and_reclaims_count() {
        let mgr = manager(4);
        assert_eq!(mgr.lease(), None);
        let leased = SessionManager::new(
            market(),
            SessionManagerConfig {
                max_sessions: 4,
                lease_secs: Some(1.5),
                token_secret: None,
            },
        );
        assert_eq!(leased.lease(), Some(Duration::from_millis(1500)));
        let weird = SessionManager::new(
            market(),
            SessionManagerConfig {
                max_sessions: 4,
                lease_secs: Some(-3.0),
                token_secret: None,
            },
        );
        assert_eq!(weird.lease(), Some(Duration::ZERO));
        leased.record_reclaimed(2);
        leased.record_reclaimed(0);
        assert_eq!(leased.stats().reclaimed, 2);
    }

    #[test]
    fn purchase_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(purchase_seed(7, 0), purchase_seed(7, 0));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for seq in 0..8u64 {
                assert!(seen.insert(purchase_seed(seed, seq)));
            }
        }

        // Two sessions with the same seed draw bit-identical samples.
        let mgr = manager(4);
        let cfg = SessionConfig {
            budget: 100.0,
            seed: 41,
        };
        let key = AttrSet::from_names(["se_k"]);
        let mut s1 = mgr.open(cfg).unwrap();
        let mut s2 = mgr.open(cfg).unwrap();
        let (t1, p1) = s1.buy_sample(DatasetId(0), &key, 0.4).unwrap();
        let (t2, p2) = s2.buy_sample(DatasetId(0), &key, 0.4).unwrap();
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(t1.num_rows(), t2.num_rows());
    }
}
