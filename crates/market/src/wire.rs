//! `market::wire` — the length-prefixed binary frame protocol of the
//! acquisition service.
//!
//! Every message on the wire is one **frame**: a fixed 20-byte header
//! followed by an opcode-specific payload, all little-endian:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x4543_4E44 ("DNCE" on the wire)
//!      4     2  version      protocol version of THIS frame (1 or 2)
//!      6     2  opcode       request opcode; responses set RESP_BIT (0x8000)
//!      8     8  request id   client-chosen tag echoed on the response
//!     16     4  payload len  bytes following the header (capped)
//! ```
//!
//! Versioning is **per frame**: the server answers every request at the
//! version its frame carried, so one connection can mix v1 and v2 traffic
//! and neither side keeps encode state. v1 and v2 payloads differ only in
//! the `OpenSession` response, which under v2 appends the session's
//! resumption token; v2 also adds the [`Opcode::Hello`] handshake
//! (negotiating version and feature bits) and [`Opcode::ResumeSession`]
//! (re-attach a parked session to a fresh connection). Clients that never send a
//! `Hello` keep speaking v1 and observe byte-identical frames to the v1
//! protocol.
//!
//! Requests and responses are tagged by `request id`, so a client may keep
//! many requests in flight on one connection (**pipelining**) and match
//! responses as they come back. Response payloads begin with one status
//! byte: `0` is success, anything else is a [`FaultCode`] followed by a
//! length-prefixed UTF-8 message.
//!
//! Attribute sets travel as interned [`AttrId`] lists (`u16` count +
//! `u32` ids) — the id space is catalog-scoped (published with the free
//! schema metadata), so the hot quote path moves no strings at all.
//!
//! ## Determinism contract
//!
//! Encoding is a pure function of the frame's logical content: the same
//! `(request id, reply)` always serializes to the same bytes. Combined with
//! the session layer's own determinism (pinned snapshot + per-purchase
//! seeding), a session's wire-level response transcript is **byte-identical**
//! to the same call sequence made in-process against the pinned snapshot —
//! `tests/wire_service.rs` pins exactly that, and [`table_digest`] is how
//! purchased tables are bound into the transcript without shipping rows.
//!
//! ## Robustness contract
//!
//! Decoding hostile input never panics and never over-allocates: header
//! validation ([`peek_header`]) rejects bad magic, unknown versions and
//! payload lengths beyond the declared cap before any payload is read, and
//! payload decoding bounds every count it reads against the bytes actually
//! present ([`WireError::Truncated`]).

use crate::catalog::DatasetId;
use crate::session::SessionError;
use dance_relation::hash::stable_hash64;
use dance_relation::{AttrId, AttrSet, Table};
use std::fmt;

/// Frame magic: the bytes `DNCE` once the `u32` is laid out little-endian.
pub const MAGIC: u32 = 0x4543_4E44;

/// Newest protocol version this build speaks (and the version a `Hello`
/// negotiates up to).
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version still accepted in a frame header.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Feature bit: the server parks disconnected sessions and accepts
/// [`Opcode::ResumeSession`].
pub const FEATURE_RESUME: u32 = 1;

/// Feature bit: the server deduplicates retried mutating requests through
/// its per-session replay cache (exactly-once semantics).
pub const FEATURE_REPLAY: u32 = 2;

/// All feature bits this build implements.
pub const SERVER_FEATURES: u32 = FEATURE_RESUME | FEATURE_REPLAY;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Default cap on payload length; larger frames are rejected at the header,
/// before any payload is buffered.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

/// Response frames set this bit on the request opcode they answer.
pub const RESP_BIT: u16 = 0x8000;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Opcode {
    /// Open a session (shopper id, seed, budget) → (session id, version).
    OpenSession = 1,
    /// Quote one projection at the pinned version (free).
    Quote = 2,
    /// Quote a batch of projections in one frame (free).
    QuoteBatch = 3,
    /// Buy a correlated sample (seeded from the session's purchase index).
    BuySample = 4,
    /// Execute a projection purchase.
    Execute = 5,
    /// Re-pin the session to the current catalog version.
    Repin = 6,
    /// Service counters (server + session manager).
    Stats = 7,
    /// Close a session, returning its final report summary.
    CloseSession = 8,
    /// Version/feature handshake: (client version, feature bits) →
    /// (accepted version, granted feature bits).
    Hello = 9,
    /// Re-attach a parked session to this connection by its token.
    ResumeSession = 10,
}

impl Opcode {
    /// All request opcodes, in numeric order.
    pub const ALL: [Opcode; 10] = [
        Opcode::OpenSession,
        Opcode::Quote,
        Opcode::QuoteBatch,
        Opcode::BuySample,
        Opcode::Execute,
        Opcode::Repin,
        Opcode::Stats,
        Opcode::CloseSession,
        Opcode::Hello,
        Opcode::ResumeSession,
    ];

    /// Decode a request opcode (the `RESP_BIT` must already be stripped).
    pub fn from_u16(raw: u16) -> Result<Opcode, WireError> {
        match raw {
            1 => Ok(Opcode::OpenSession),
            2 => Ok(Opcode::Quote),
            3 => Ok(Opcode::QuoteBatch),
            4 => Ok(Opcode::BuySample),
            5 => Ok(Opcode::Execute),
            6 => Ok(Opcode::Repin),
            7 => Ok(Opcode::Stats),
            8 => Ok(Opcode::CloseSession),
            9 => Ok(Opcode::Hello),
            10 => Ok(Opcode::ResumeSession),
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

/// Protocol-level failures: framing or payload decoding went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The magic bytes are wrong — this is not a DANCE frame.
    BadMagic(u32),
    /// The header's protocol version is not supported.
    BadVersion(u16),
    /// The opcode is not one of [`Opcode::ALL`] (request side) or their
    /// response counterparts.
    UnknownOpcode(u16),
    /// The declared payload length exceeds the negotiated cap.
    PayloadTooLarge {
        /// Declared payload length.
        len: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The payload ended before the declared content did.
    Truncated,
    /// The payload is structurally invalid (bad status byte, trailing
    /// bytes, non-UTF-8 message…).
    Malformed(&'static str),
    /// The read deadline expired before a complete frame arrived.
    Timeout,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic 0x{m:08X}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:04X}"),
            WireError::PayloadTooLarge { len, cap } => {
                write!(f, "payload length {len} exceeds cap {cap}")
            }
            WireError::Truncated => write!(f, "truncated payload"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Timeout => write!(f, "read deadline expired before a complete frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame header (magic/version already validated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version this frame is encoded at.
    pub version: u16,
    /// Raw opcode field (`RESP_BIT` included on responses).
    pub opcode: u16,
    /// Client-chosen request tag.
    pub request_id: u64,
    /// Payload byte count following the header.
    pub payload_len: u32,
}

/// A request frame's logical content.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session for `shopper` with the given seed and budget.
    OpenSession {
        /// Shopper identity (the unit of rate limiting).
        shopper: u64,
        /// Session seed (drives per-purchase sample seeds).
        seed: u64,
        /// Session budget.
        budget: f64,
    },
    /// Quote `π_attrs(dataset)` at the session's pinned version.
    Quote {
        /// Target session.
        session: u64,
        /// Target dataset.
        dataset: u32,
        /// Projection attributes.
        attrs: AttrSet,
    },
    /// Quote many projections in one frame.
    QuoteBatch {
        /// Target session.
        session: u64,
        /// `(dataset, attrs)` per quote, answered in order.
        items: Vec<(DatasetId, AttrSet)>,
    },
    /// Buy a correlated sample keyed on `key` at `rate`.
    BuySample {
        /// Target session.
        session: u64,
        /// Target dataset.
        dataset: u32,
        /// Sampling rate.
        rate: f64,
        /// Sample key attributes.
        key: AttrSet,
    },
    /// Execute a projection purchase.
    Execute {
        /// Target session.
        session: u64,
        /// Target dataset.
        dataset: u32,
        /// Projection attributes.
        attrs: AttrSet,
    },
    /// Re-pin the session to the live catalog version.
    Repin {
        /// Target session.
        session: u64,
    },
    /// Service counters.
    Stats,
    /// Close the session and return its report summary.
    CloseSession {
        /// Target session.
        session: u64,
    },
    /// Version/feature handshake.
    Hello {
        /// Newest protocol version the client speaks.
        version: u16,
        /// Feature bits the client wants.
        features: u32,
    },
    /// Re-attach a parked session to this connection.
    Resume {
        /// The [`crate::session::SessionToken`] from the v2 open reply.
        token: u64,
    },
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::OpenSession { .. } => Opcode::OpenSession,
            Request::Quote { .. } => Opcode::Quote,
            Request::QuoteBatch { .. } => Opcode::QuoteBatch,
            Request::BuySample { .. } => Opcode::BuySample,
            Request::Execute { .. } => Opcode::Execute,
            Request::Repin { .. } => Opcode::Repin,
            Request::Stats => Opcode::Stats,
            Request::CloseSession { .. } => Opcode::CloseSession,
            Request::Hello { .. } => Opcode::Hello,
            Request::Resume { .. } => Opcode::ResumeSession,
        }
    }
}

/// A successful response's logical content.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    OpenSession {
        /// Server-assigned session id.
        session: u64,
        /// Catalog version the session pinned.
        version: u64,
        /// Resumption token ([`crate::session::SessionToken`]). Carried on
        /// the wire only under protocol v2; v1 frames encode/decode this
        /// as `0`.
        token: u64,
    },
    /// Quoted price.
    Quote {
        /// Price of the projection at the pinned version.
        price: f64,
    },
    /// Batch of quoted prices, in request order.
    QuoteBatch {
        /// One price per requested item.
        prices: Vec<f64>,
    },
    /// Sample purchased.
    BuySample {
        /// Price charged.
        price: f64,
        /// Rows in the purchased sample.
        rows: u64,
        /// [`table_digest`] of the purchased sample — binds the exact
        /// content into the transcript without shipping rows.
        digest: u64,
    },
    /// Projection purchased.
    Execute {
        /// Price charged.
        price: f64,
        /// Rows in the purchased projection.
        rows: u64,
        /// [`table_digest`] of the purchased projection.
        digest: u64,
    },
    /// Session re-pinned.
    Repin {
        /// The new pinned catalog version.
        version: u64,
    },
    /// Service counters.
    Stats(StatsSnapshot),
    /// Session closed.
    CloseSession {
        /// Session seed (echoed from the open).
        seed: u64,
        /// Catalog version the session was pinned at when closed.
        version: u64,
        /// Number of purchases in the ledger.
        purchases: u32,
        /// Total spend.
        spent: f64,
        /// Budget headroom left.
        remaining: f64,
    },
    /// Handshake accepted.
    Hello {
        /// Version the server will speak on this connection's v2 frames
        /// (`min(client version, `[`PROTOCOL_VERSION`]`)`).
        version: u16,
        /// Requested feature bits the server grants.
        features: u32,
    },
    /// Session re-attached to this connection.
    Resume {
        /// The session id (unchanged across resumption).
        session: u64,
        /// Catalog version the session is still pinned at.
        version: u64,
        /// Purchases already in the ledger — where the purchase-seed
        /// sequence continues from.
        purchases: u32,
    },
}

impl Response {
    /// The request opcode this response answers.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::OpenSession { .. } => Opcode::OpenSession,
            Response::Quote { .. } => Opcode::Quote,
            Response::QuoteBatch { .. } => Opcode::QuoteBatch,
            Response::BuySample { .. } => Opcode::BuySample,
            Response::Execute { .. } => Opcode::Execute,
            Response::Repin { .. } => Opcode::Repin,
            Response::Stats(_) => Opcode::Stats,
            Response::CloseSession { .. } => Opcode::CloseSession,
            Response::Hello { .. } => Opcode::Hello,
            Response::Resume { .. } => Opcode::ResumeSession,
        }
    }
}

/// Point-in-time service counters carried by [`Response::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions currently open (manager view).
    pub sessions_open: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Session opens rejected at capacity.
    pub sessions_rejected: u64,
    /// High-water mark of simultaneously open sessions.
    pub sessions_peak_open: u64,
    /// Connections accepted onto a worker.
    pub connections_accepted: u64,
    /// Connections turned away by the backlog policy.
    pub connections_rejected: u64,
    /// Request frames handled (including faulted ones).
    pub requests_served: u64,
    /// Requests refused by the per-shopper token bucket.
    pub rate_limited: u64,
    /// Frames that failed protocol validation.
    pub protocol_errors: u64,
    /// Connections closed because a mid-frame read or a write missed the
    /// I/O deadline (slow-loris defense).
    pub timeouts: u64,
    /// Sessions re-attached to a fresh connection via `ResumeSession`.
    pub resumes: u64,
    /// Retried requests answered from a replay cache instead of being
    /// re-executed (exactly-once dedup hits).
    pub replay_hits: u64,
    /// Parked sessions reclaimed after their idle lease expired.
    pub leases_reclaimed: u64,
}

/// Failure classes a response can carry (the non-zero status bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultCode {
    /// Admission control turned the request (or connection) away — retry
    /// later. Used by the rate limiter and the accept backlog.
    Rejected = 1,
    /// The session manager is at capacity.
    AtCapacity = 2,
    /// The session budget refused the purchase.
    Budget = 3,
    /// The marketplace refused the operation (unknown dataset, bad attrs…).
    Market = 4,
    /// The frame failed protocol validation.
    Protocol = 5,
    /// The session id is not open on this connection.
    UnknownSession = 6,
}

impl FaultCode {
    fn from_u8(raw: u8) -> Result<FaultCode, WireError> {
        match raw {
            1 => Ok(FaultCode::Rejected),
            2 => Ok(FaultCode::AtCapacity),
            3 => Ok(FaultCode::Budget),
            4 => Ok(FaultCode::Market),
            5 => Ok(FaultCode::Protocol),
            6 => Ok(FaultCode::UnknownSession),
            _ => Err(WireError::Malformed("unknown fault code")),
        }
    }
}

/// An error response: a [`FaultCode`] plus a human-readable message. The
/// message is a pure function of the underlying error, so fault frames obey
/// the same transcript determinism as success frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Failure class.
    pub code: FaultCode,
    /// Human-readable detail.
    pub message: String,
}

impl Fault {
    /// An admission-control rejection (rate limit / backlog).
    pub fn rejected(message: &str) -> Fault {
        Fault {
            code: FaultCode::Rejected,
            message: message.to_string(),
        }
    }

    /// A protocol fault wrapping a [`WireError`].
    pub fn protocol(e: &WireError) -> Fault {
        Fault {
            code: FaultCode::Protocol,
            message: e.to_string(),
        }
    }

    /// The fault for a session id that is not open on this connection.
    pub fn unknown_session(session: u64) -> Fault {
        Fault {
            code: FaultCode::UnknownSession,
            message: format!("session {session} is not open on this connection"),
        }
    }

    /// The fault for a resumption token that matches no parked session
    /// (never opened, already closed, or reclaimed after its lease expired).
    pub fn unknown_token() -> Fault {
        Fault {
            code: FaultCode::UnknownSession,
            message: "unknown or expired session token".to_string(),
        }
    }

    /// The fault for resuming a session still attached to another live
    /// connection — transient: retry once the old connection parks it.
    pub fn session_busy() -> Fault {
        Fault {
            code: FaultCode::Rejected,
            message: "session is attached to another connection; retry".to_string(),
        }
    }

    /// The fault for a `Hello` offering a version older than
    /// [`MIN_PROTOCOL_VERSION`].
    pub fn unsupported_version(version: u16) -> Fault {
        Fault {
            code: FaultCode::Protocol,
            message: format!(
                "client version {version} is older than the oldest supported \
                 version {MIN_PROTOCOL_VERSION}"
            ),
        }
    }

    /// Map a session-layer error onto its wire fault.
    pub fn from_session_error(e: &SessionError) -> Fault {
        let code = match e {
            SessionError::AtCapacity { .. } => FaultCode::AtCapacity,
            SessionError::Budget(_) => FaultCode::Budget,
            SessionError::Market(_) => FaultCode::Market,
        };
        Fault {
            code,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// What a response frame decodes to: success or fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success (status byte 0).
    Ok(Response),
    /// Failure (status byte = the fault code).
    Fault(Fault),
}

impl Reply {
    /// The success payload, or `None` on a fault.
    pub fn ok(&self) -> Option<&Response> {
        match self {
            Reply::Ok(r) => Some(r),
            Reply::Fault(_) => None,
        }
    }

    /// The fault, or `None` on success.
    pub fn fault(&self) -> Option<&Fault> {
        match self {
            Reply::Ok(_) => None,
            Reply::Fault(f) => Some(f),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives: append-only writers into a caller-owned buffer, so
// per-connection buffers are reused across requests with no allocation once
// they reach their working size.

#[inline]
fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

#[inline]
fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_f64(b: &mut Vec<u8>, v: f64) {
    b.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_attrs(b: &mut Vec<u8>, attrs: &AttrSet) {
    debug_assert!(attrs.len() <= u16::MAX as usize, "attr set too large");
    put_u16(b, attrs.len() as u16);
    for id in attrs.iter() {
        put_u32(b, id.0);
    }
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

/// Append a frame header for `version`/`opcode`/`request_id` with a zero
/// payload length, returning the payload start offset for [`finish_frame`].
fn begin_frame(buf: &mut Vec<u8>, version: u16, opcode: u16, request_id: u64) -> usize {
    put_u32(buf, MAGIC);
    put_u16(buf, version);
    put_u16(buf, opcode);
    put_u64(buf, request_id);
    put_u32(buf, 0);
    buf.len()
}

/// Patch the payload length of the frame begun at `payload_start`.
fn finish_frame(buf: &mut [u8], payload_start: usize) {
    let len = (buf.len() - payload_start) as u32;
    buf[payload_start - 4..payload_start].copy_from_slice(&len.to_le_bytes());
}

/// Append one encoded request frame to `buf` at protocol v1 (request
/// payloads are identical across versions; only the header differs).
pub fn encode_request(buf: &mut Vec<u8>, request_id: u64, req: &Request) {
    encode_request_v(buf, MIN_PROTOCOL_VERSION, request_id, req);
}

/// Append one encoded request frame to `buf` at the given header version.
pub fn encode_request_v(buf: &mut Vec<u8>, version: u16, request_id: u64, req: &Request) {
    let start = begin_frame(buf, version, req.opcode() as u16, request_id);
    match req {
        Request::OpenSession {
            shopper,
            seed,
            budget,
        } => {
            put_u64(buf, *shopper);
            put_u64(buf, *seed);
            put_f64(buf, *budget);
        }
        Request::Quote {
            session,
            dataset,
            attrs,
        }
        | Request::Execute {
            session,
            dataset,
            attrs,
        } => {
            put_u64(buf, *session);
            put_u32(buf, *dataset);
            put_attrs(buf, attrs);
        }
        Request::QuoteBatch { session, items } => {
            put_u64(buf, *session);
            put_u32(buf, items.len() as u32);
            for (id, attrs) in items {
                put_u32(buf, id.0);
                put_attrs(buf, attrs);
            }
        }
        Request::BuySample {
            session,
            dataset,
            rate,
            key,
        } => {
            put_u64(buf, *session);
            put_u32(buf, *dataset);
            put_f64(buf, *rate);
            put_attrs(buf, key);
        }
        Request::Repin { session } | Request::CloseSession { session } => {
            put_u64(buf, *session);
        }
        Request::Stats => {}
        Request::Hello { version, features } => {
            put_u16(buf, *version);
            put_u32(buf, *features);
        }
        Request::Resume { token } => put_u64(buf, *token),
    }
    finish_frame(buf, start);
}

/// Append one encoded response frame to `buf` at protocol v1. `req_opcode`
/// is the raw opcode of the request being answered (`0` for
/// connection-level faults, e.g. a backlog rejection before any request
/// was read).
pub fn encode_reply(buf: &mut Vec<u8>, request_id: u64, req_opcode: u16, reply: &Reply) {
    encode_reply_v(buf, MIN_PROTOCOL_VERSION, request_id, req_opcode, reply);
}

/// Append one encoded response frame to `buf` at the given version — the
/// server always answers at the version the request frame carried.
pub fn encode_reply_v(
    buf: &mut Vec<u8>,
    version: u16,
    request_id: u64,
    req_opcode: u16,
    reply: &Reply,
) {
    let start = begin_frame(buf, version, req_opcode | RESP_BIT, request_id);
    match reply {
        Reply::Ok(resp) => {
            debug_assert_eq!(resp.opcode() as u16, req_opcode, "reply/opcode mismatch");
            put_u8(buf, 0);
            match resp {
                Response::OpenSession {
                    session,
                    version: pinned,
                    token,
                } => {
                    put_u64(buf, *session);
                    put_u64(buf, *pinned);
                    // The resumption token is the one payload difference
                    // between v1 and v2: v1 frames stay byte-identical to
                    // the pre-token protocol.
                    if version >= 2 {
                        put_u64(buf, *token);
                    }
                }
                Response::Quote { price } => put_f64(buf, *price),
                Response::QuoteBatch { prices } => {
                    put_u32(buf, prices.len() as u32);
                    for p in prices {
                        put_f64(buf, *p);
                    }
                }
                Response::BuySample {
                    price,
                    rows,
                    digest,
                }
                | Response::Execute {
                    price,
                    rows,
                    digest,
                } => {
                    put_f64(buf, *price);
                    put_u64(buf, *rows);
                    put_u64(buf, *digest);
                }
                Response::Repin { version } => put_u64(buf, *version),
                Response::Stats(s) => {
                    for v in [
                        s.sessions_open,
                        s.sessions_opened,
                        s.sessions_closed,
                        s.sessions_rejected,
                        s.sessions_peak_open,
                        s.connections_accepted,
                        s.connections_rejected,
                        s.requests_served,
                        s.rate_limited,
                        s.protocol_errors,
                        s.timeouts,
                        s.resumes,
                        s.replay_hits,
                        s.leases_reclaimed,
                    ] {
                        put_u64(buf, v);
                    }
                }
                Response::CloseSession {
                    seed,
                    version,
                    purchases,
                    spent,
                    remaining,
                } => {
                    put_u64(buf, *seed);
                    put_u64(buf, *version);
                    put_u32(buf, *purchases);
                    put_f64(buf, *spent);
                    put_f64(buf, *remaining);
                }
                Response::Hello { version, features } => {
                    put_u16(buf, *version);
                    put_u32(buf, *features);
                }
                Response::Resume {
                    session,
                    version,
                    purchases,
                } => {
                    put_u64(buf, *session);
                    put_u64(buf, *version);
                    put_u32(buf, *purchases);
                }
            }
        }
        Reply::Fault(fault) => {
            put_u8(buf, fault.code as u8);
            put_str(buf, &fault.message);
        }
    }
    finish_frame(buf, start);
}

// ---------------------------------------------------------------------------
// Decoding: a bounds-checked little-endian reader over the payload slice.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn attrs(&mut self) -> Result<AttrSet, WireError> {
        let n = self.u16()? as usize;
        // Bound the allocation by the bytes actually present: `n` ids need
        // `4n` payload bytes, so a hostile count fails before any reserve.
        if self.remaining() < n * 4 {
            return Err(WireError::Truncated);
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(AttrId(self.u32()?));
        }
        Ok(AttrSet::from_ids(ids))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 message"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes"));
        }
        Ok(())
    }
}

/// Validate and read a frame header from the front of `buf`.
///
/// Returns `Ok(None)` when fewer than [`HEADER_LEN`] bytes are buffered (read
/// more), `Ok(Some(header))` on a valid header, and an error on bad magic,
/// unsupported version, or a payload length beyond `max_payload` — all
/// checked **before** any payload is buffered, so a hostile length can never
/// force an allocation.
pub fn peek_header(buf: &[u8], max_payload: u32) -> Result<Option<FrameHeader>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut r = Reader::new(&buf[..HEADER_LEN]);
    let magic = r.u32().unwrap();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u16().unwrap();
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let opcode = r.u16().unwrap();
    let request_id = r.u64().unwrap();
    let payload_len = r.u32().unwrap();
    if payload_len > max_payload {
        return Err(WireError::PayloadTooLarge {
            len: payload_len,
            cap: max_payload,
        });
    }
    Ok(Some(FrameHeader {
        version,
        opcode,
        request_id,
        payload_len,
    }))
}

/// Decode a request payload for the header's raw opcode.
pub fn decode_request(opcode: u16, payload: &[u8]) -> Result<Request, WireError> {
    let op = Opcode::from_u16(opcode)?;
    let mut r = Reader::new(payload);
    let req = match op {
        Opcode::OpenSession => Request::OpenSession {
            shopper: r.u64()?,
            seed: r.u64()?,
            budget: r.f64()?,
        },
        Opcode::Quote => Request::Quote {
            session: r.u64()?,
            dataset: r.u32()?,
            attrs: r.attrs()?,
        },
        Opcode::QuoteBatch => {
            let session = r.u64()?;
            let n = r.u32()? as usize;
            // Each item is at least 6 bytes (dataset id + empty attr set).
            if r.remaining() < n * 6 {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let id = DatasetId(r.u32()?);
                items.push((id, r.attrs()?));
            }
            Request::QuoteBatch { session, items }
        }
        Opcode::BuySample => Request::BuySample {
            session: r.u64()?,
            dataset: r.u32()?,
            rate: r.f64()?,
            key: r.attrs()?,
        },
        Opcode::Execute => Request::Execute {
            session: r.u64()?,
            dataset: r.u32()?,
            attrs: r.attrs()?,
        },
        Opcode::Repin => Request::Repin { session: r.u64()? },
        Opcode::Stats => Request::Stats,
        Opcode::CloseSession => Request::CloseSession { session: r.u64()? },
        Opcode::Hello => Request::Hello {
            version: r.u16()?,
            features: r.u32()?,
        },
        Opcode::ResumeSession => Request::Resume { token: r.u64()? },
    };
    r.finish()?;
    Ok(req)
}

/// Decode a v1 response payload for the header's raw opcode (which must
/// carry [`RESP_BIT`]; opcode `RESP_BIT | 0` is a connection-level fault
/// frame).
pub fn decode_reply(opcode: u16, payload: &[u8]) -> Result<Reply, WireError> {
    decode_reply_v(MIN_PROTOCOL_VERSION, opcode, payload)
}

/// Decode a response payload at the version its frame header carried.
pub fn decode_reply_v(version: u16, opcode: u16, payload: &[u8]) -> Result<Reply, WireError> {
    if opcode & RESP_BIT == 0 {
        return Err(WireError::UnknownOpcode(opcode));
    }
    let low = opcode & !RESP_BIT;
    let mut r = Reader::new(payload);
    let status = r.u8()?;
    if status != 0 {
        let fault = Fault {
            code: FaultCode::from_u8(status)?,
            message: r.string()?,
        };
        r.finish()?;
        return Ok(Reply::Fault(fault));
    }
    if low == 0 {
        return Err(WireError::Malformed("ok status on a fault-only frame"));
    }
    let resp = match Opcode::from_u16(low)? {
        Opcode::OpenSession => Response::OpenSession {
            session: r.u64()?,
            version: r.u64()?,
            token: if version >= 2 { r.u64()? } else { 0 },
        },
        Opcode::Quote => Response::Quote { price: r.f64()? },
        Opcode::QuoteBatch => {
            let n = r.u32()? as usize;
            if r.remaining() < n * 8 {
                return Err(WireError::Truncated);
            }
            let mut prices = Vec::with_capacity(n);
            for _ in 0..n {
                prices.push(r.f64()?);
            }
            Response::QuoteBatch { prices }
        }
        Opcode::BuySample => Response::BuySample {
            price: r.f64()?,
            rows: r.u64()?,
            digest: r.u64()?,
        },
        Opcode::Execute => Response::Execute {
            price: r.f64()?,
            rows: r.u64()?,
            digest: r.u64()?,
        },
        Opcode::Repin => Response::Repin { version: r.u64()? },
        Opcode::Stats => {
            let mut vals = [0u64; 14];
            for v in &mut vals {
                *v = r.u64()?;
            }
            Response::Stats(StatsSnapshot {
                sessions_open: vals[0],
                sessions_opened: vals[1],
                sessions_closed: vals[2],
                sessions_rejected: vals[3],
                sessions_peak_open: vals[4],
                connections_accepted: vals[5],
                connections_rejected: vals[6],
                requests_served: vals[7],
                rate_limited: vals[8],
                protocol_errors: vals[9],
                timeouts: vals[10],
                resumes: vals[11],
                replay_hits: vals[12],
                leases_reclaimed: vals[13],
            })
        }
        Opcode::CloseSession => Response::CloseSession {
            seed: r.u64()?,
            version: r.u64()?,
            purchases: r.u32()?,
            spent: r.f64()?,
            remaining: r.f64()?,
        },
        Opcode::Hello => Response::Hello {
            version: r.u16()?,
            features: r.u32()?,
        },
        Opcode::ResumeSession => Response::Resume {
            session: r.u64()?,
            version: r.u64()?,
            purchases: r.u32()?,
        },
    };
    r.finish()?;
    Ok(Reply::Ok(resp))
}

/// A stable content digest of a table: schema attribute names, row count,
/// and every cell value (in row-major order) folded through
/// [`stable_hash64`]. Two tables digest equal iff their shapes, attribute
/// names and cell contents are identical — this is how a
/// purchased table is bound into a wire transcript without shipping rows.
pub fn table_digest(t: &Table) -> u64 {
    let mut acc = stable_hash64(0xD16E_5700, &(t.num_rows() as u64, t.num_attrs() as u64));
    for a in t.schema().attributes() {
        acc = stable_hash64(acc, &*a.id.name());
    }
    for row in 0..t.num_rows() {
        for col in 0..t.num_attrs() {
            acc = stable_hash64(acc, &t.value(row, col));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{Value, ValueType};

    fn attrs_of(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().map(|&i| AttrId(i)))
    }

    fn frame_of_request(request_id: u64, req: &Request) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_request(&mut buf, request_id, req);
        buf
    }

    fn frame_of_reply(request_id: u64, op: u16, reply: &Reply) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_reply(&mut buf, request_id, op, reply);
        buf
    }

    fn request_roundtrip(req: &Request) {
        let buf = frame_of_request(7, req);
        let h = peek_header(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(h.opcode, req.opcode() as u16);
        assert_eq!(h.request_id, 7);
        assert_eq!(buf.len(), HEADER_LEN + h.payload_len as usize);
        let back = decode_request(h.opcode, &buf[HEADER_LEN..]).unwrap();
        assert_eq!(&back, req);
    }

    fn reply_roundtrip(op: Opcode, reply: &Reply) {
        let buf = frame_of_reply(9, op as u16, reply);
        let h = peek_header(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(h.opcode, op as u16 | RESP_BIT);
        let back = decode_reply(h.opcode, &buf[HEADER_LEN..]).unwrap();
        assert_eq!(&back, reply);
    }

    #[test]
    fn header_layout_is_20_bytes_little_endian() {
        let buf = frame_of_request(0x0102_0304_0506_0708, &Request::Stats);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(&buf[0..4], b"DNCE");
        assert_eq!(&buf[4..6], &1u16.to_le_bytes());
        assert_eq!(&buf[6..8], &(Opcode::Stats as u16).to_le_bytes());
        assert_eq!(&buf[8..16], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&buf[16..20], &0u32.to_le_bytes());
    }

    #[test]
    fn every_request_opcode_roundtrips() {
        let a = attrs_of(&[3, 1, 2]);
        for req in [
            Request::OpenSession {
                shopper: 42,
                seed: 7,
                budget: 12.5,
            },
            Request::Quote {
                session: 1,
                dataset: 2,
                attrs: a.clone(),
            },
            Request::QuoteBatch {
                session: 1,
                items: vec![(DatasetId(0), a.clone()), (DatasetId(4), attrs_of(&[9]))],
            },
            Request::BuySample {
                session: 3,
                dataset: 0,
                rate: 0.25,
                key: attrs_of(&[5]),
            },
            Request::Execute {
                session: 3,
                dataset: 1,
                attrs: a.clone(),
            },
            Request::Repin { session: 3 },
            Request::Stats,
            Request::CloseSession { session: 3 },
            Request::Hello {
                version: PROTOCOL_VERSION,
                features: SERVER_FEATURES,
            },
            Request::Resume {
                token: 0xFACE_FEED_DEAD_BEEF,
            },
        ] {
            request_roundtrip(&req);
        }
    }

    #[test]
    fn every_reply_opcode_roundtrips() {
        let cases: Vec<(Opcode, Reply)> = vec![
            (
                Opcode::OpenSession,
                Reply::Ok(Response::OpenSession {
                    session: 8,
                    version: 2,
                    token: 0,
                }),
            ),
            (Opcode::Quote, Reply::Ok(Response::Quote { price: 1.75 })),
            (
                Opcode::QuoteBatch,
                Reply::Ok(Response::QuoteBatch {
                    prices: vec![0.5, 2.0, 0.5],
                }),
            ),
            (
                Opcode::BuySample,
                Reply::Ok(Response::BuySample {
                    price: 0.25,
                    rows: 60,
                    digest: 0xDEAD_BEEF,
                }),
            ),
            (
                Opcode::Execute,
                Reply::Ok(Response::Execute {
                    price: 1.0,
                    rows: 40,
                    digest: 1,
                }),
            ),
            (Opcode::Repin, Reply::Ok(Response::Repin { version: 3 })),
            (
                Opcode::Stats,
                Reply::Ok(Response::Stats(StatsSnapshot {
                    sessions_open: 1,
                    sessions_opened: 2,
                    sessions_closed: 3,
                    sessions_rejected: 4,
                    sessions_peak_open: 5,
                    connections_accepted: 6,
                    connections_rejected: 7,
                    requests_served: 8,
                    rate_limited: 9,
                    protocol_errors: 10,
                    timeouts: 11,
                    resumes: 12,
                    replay_hits: 13,
                    leases_reclaimed: 14,
                })),
            ),
            (
                Opcode::CloseSession,
                Reply::Ok(Response::CloseSession {
                    seed: 7,
                    version: 1,
                    purchases: 4,
                    spent: 3.25,
                    remaining: 0.75,
                }),
            ),
            (
                Opcode::Quote,
                Reply::Fault(Fault {
                    code: FaultCode::Market,
                    message: "marketplace: unknown dataset: D9".to_string(),
                }),
            ),
            (
                Opcode::BuySample,
                Reply::Fault(Fault {
                    code: FaultCode::Budget,
                    message: "over budget".to_string(),
                }),
            ),
            (
                Opcode::Hello,
                Reply::Ok(Response::Hello {
                    version: PROTOCOL_VERSION,
                    features: SERVER_FEATURES,
                }),
            ),
            (
                Opcode::ResumeSession,
                Reply::Ok(Response::Resume {
                    session: 8,
                    version: 2,
                    purchases: 5,
                }),
            ),
            (Opcode::ResumeSession, Reply::Fault(Fault::unknown_token())),
            (Opcode::ResumeSession, Reply::Fault(Fault::session_busy())),
            (Opcode::Hello, Reply::Fault(Fault::unsupported_version(0))),
        ];
        for (op, reply) in &cases {
            reply_roundtrip(*op, reply);
        }
    }

    #[test]
    fn open_reply_carries_the_token_only_under_v2() {
        let reply = Reply::Ok(Response::OpenSession {
            session: 8,
            version: 3,
            token: 0xABCD_EF01_2345_6789,
        });
        // v2 framing roundtrips the token.
        let mut v2 = Vec::new();
        encode_reply_v(&mut v2, 2, 9, Opcode::OpenSession as u16, &reply);
        let h = peek_header(&v2, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(h.version, 2);
        assert_eq!(
            decode_reply_v(h.version, h.opcode, &v2[HEADER_LEN..]).unwrap(),
            reply
        );
        // v1 framing drops it: the frame is byte-identical to encoding the
        // same reply with token 0 (the pre-token wire format).
        let mut v1 = Vec::new();
        encode_reply(&mut v1, 9, Opcode::OpenSession as u16, &reply);
        let mut v1_zero = Vec::new();
        encode_reply(
            &mut v1_zero,
            9,
            Opcode::OpenSession as u16,
            &Reply::Ok(Response::OpenSession {
                session: 8,
                version: 3,
                token: 0,
            }),
        );
        assert_eq!(v1, v1_zero);
        let h = peek_header(&v1, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
        assert_eq!(h.version, 1);
        let back = decode_reply_v(h.version, h.opcode, &v1[HEADER_LEN..]).unwrap();
        let Reply::Ok(Response::OpenSession { token, .. }) = back else {
            panic!("wrong reply: {back:?}");
        };
        assert_eq!(token, 0);
    }

    #[test]
    fn both_header_versions_are_accepted_and_surfaced() {
        for v in [1u16, 2] {
            let mut buf = Vec::new();
            encode_request_v(&mut buf, v, 1, &Request::Stats);
            let h = peek_header(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
            assert_eq!(h.version, v);
        }
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::Stats);
        buf[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            peek_header(&buf, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadVersion(0))
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let req = Request::Quote {
            session: 5,
            dataset: 1,
            attrs: attrs_of(&[1, 2, 3]),
        };
        assert_eq!(frame_of_request(11, &req), frame_of_request(11, &req));
        let reply = Reply::Ok(Response::Quote { price: 0.125 });
        assert_eq!(
            frame_of_reply(11, Opcode::Quote as u16, &reply),
            frame_of_reply(11, Opcode::Quote as u16, &reply)
        );
    }

    #[test]
    fn truncated_header_asks_for_more_bytes() {
        let buf = frame_of_request(1, &Request::Repin { session: 0 });
        for n in 0..HEADER_LEN {
            assert_eq!(peek_header(&buf[..n], DEFAULT_MAX_PAYLOAD), Ok(None));
        }
    }

    #[test]
    fn garbage_magic_and_version_are_clean_errors() {
        let mut buf = frame_of_request(1, &Request::Stats);
        buf[0] = b'X';
        assert!(matches!(
            peek_header(&buf, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));
        let mut buf = frame_of_request(1, &Request::Stats);
        buf[4] = 9;
        assert_eq!(
            peek_header(&buf, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadVersion(9))
        );
    }

    #[test]
    fn oversized_payload_length_is_rejected_at_the_header() {
        let mut buf = frame_of_request(1, &Request::Stats);
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            peek_header(&buf, 1024),
            Err(WireError::PayloadTooLarge {
                len: u32::MAX,
                cap: 1024
            })
        );
    }

    #[test]
    fn unknown_opcode_is_a_clean_error() {
        assert_eq!(
            decode_request(0x7777, &[]),
            Err(WireError::UnknownOpcode(0x7777))
        );
        assert_eq!(decode_reply(0x0005, &[0]), Err(WireError::UnknownOpcode(5)));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_clean_errors() {
        let buf = frame_of_request(
            1,
            &Request::Quote {
                session: 1,
                dataset: 0,
                attrs: attrs_of(&[1, 2]),
            },
        );
        let payload = &buf[HEADER_LEN..];
        for n in 0..payload.len() {
            assert_eq!(
                decode_request(Opcode::Quote as u16, &payload[..n]),
                Err(WireError::Truncated),
                "cut at {n}"
            );
        }
        let mut extended = payload.to_vec();
        extended.push(0);
        assert_eq!(
            decode_request(Opcode::Quote as u16, &extended),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn hostile_counts_cannot_force_allocation() {
        // A Quote payload declaring 65535 attrs but carrying none: the count
        // is checked against the bytes present before any Vec is reserved.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 0);
        put_u16(&mut payload, u16::MAX);
        assert_eq!(
            decode_request(Opcode::Quote as u16, &payload),
            Err(WireError::Truncated)
        );
        // Same for a QuoteBatch declaring u32::MAX items.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX);
        assert_eq!(
            decode_request(Opcode::QuoteBatch as u16, &payload),
            Err(WireError::Truncated)
        );
        // And a batch-quote reply declaring u32::MAX prices.
        let mut payload = vec![0u8];
        put_u32(&mut payload, u32::MAX);
        assert_eq!(
            decode_reply(Opcode::QuoteBatch as u16 | RESP_BIT, &payload),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn bad_status_bytes_are_clean_errors() {
        assert_eq!(
            decode_reply(Opcode::Quote as u16 | RESP_BIT, &[99, 0, 0, 0, 0]),
            Err(WireError::Malformed("unknown fault code"))
        );
        // A fault message that is not UTF-8.
        let mut payload = vec![FaultCode::Market as u8];
        put_u32(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_reply(Opcode::Quote as u16 | RESP_BIT, &payload),
            Err(WireError::Malformed("non-UTF-8 message"))
        );
    }

    #[test]
    fn table_digest_tracks_content() {
        let t1 = Table::from_rows(
            "wd",
            &[("wd_k", ValueType::Int), ("wd_v", ValueType::Str)],
            (0..10)
                .map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])
                .collect(),
        )
        .unwrap();
        let t2 = Table::from_rows(
            "wd",
            &[("wd_k", ValueType::Int), ("wd_v", ValueType::Str)],
            (0..10)
                .map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))])
                .collect(),
        )
        .unwrap();
        assert_eq!(table_digest(&t1), table_digest(&t2));
        let t3 = Table::from_rows(
            "wd",
            &[("wd_k", ValueType::Int), ("wd_v", ValueType::Str)],
            (0..10)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::str(if i == 9 { "x".into() } else { format!("v{i}") }),
                    ]
                })
                .collect(),
        )
        .unwrap();
        assert_ne!(table_digest(&t1), table_digest(&t3));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_attrs() -> impl Strategy<Value = AttrSet> {
            prop::collection::vec(0u32..64, 0..6)
                .prop_map(|ids| AttrSet::from_ids(ids.into_iter().map(AttrId)))
        }

        proptest! {
            /// encode → decode is the identity for every request opcode.
            #[test]
            fn request_roundtrip_holds(
                op in 0usize..10,
                session in 0u64..u64::MAX,
                seed in 0u64..u64::MAX,
                dataset in 0u32..1000,
                rate in 0.0f64..1.0,
                attrs in arb_attrs(),
                more in arb_attrs(),
            ) {
                let req = match op {
                    0 => Request::OpenSession { shopper: session, seed, budget: rate * 100.0 },
                    1 => Request::Quote { session, dataset, attrs },
                    2 => Request::QuoteBatch {
                        session,
                        items: vec![(DatasetId(dataset), attrs), (DatasetId(dataset / 2), more)],
                    },
                    3 => Request::BuySample { session, dataset, rate, key: attrs },
                    4 => Request::Execute { session, dataset, attrs },
                    5 => Request::Repin { session },
                    6 => Request::Stats,
                    7 => Request::CloseSession { session },
                    8 => Request::Hello {
                        version: (seed % 7) as u16,
                        features: dataset,
                    },
                    _ => Request::Resume { token: session },
                };
                let mut buf = Vec::new();
                encode_request(&mut buf, seed, &req);
                let h = peek_header(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
                prop_assert_eq!(h.request_id, seed);
                prop_assert_eq!(buf.len(), HEADER_LEN + h.payload_len as usize);
                let back = decode_request(h.opcode, &buf[HEADER_LEN..]).unwrap();
                prop_assert_eq!(back, req);
            }

            /// encode → decode is the identity for replies, success and fault.
            #[test]
            fn reply_roundtrip_holds(
                op in 0usize..10,
                version in 1u16..=2,
                a in 0u64..u64::MAX,
                b in 0u64..u64::MAX,
                price in 0.0f64..1e6,
                n in 0u32..10,
                fault_kind in 0usize..7,
            ) {
                let (opcode, resp) = match op {
                    0 => (Opcode::OpenSession, Response::OpenSession {
                        session: a,
                        version: b,
                        // v1 framing drops the token, so a roundtrip only
                        // holds when it is 0 at v1.
                        token: if version >= 2 { b ^ a } else { 0 },
                    }),
                    1 => (Opcode::Quote, Response::Quote { price }),
                    2 => (Opcode::QuoteBatch, Response::QuoteBatch {
                        prices: (0..n).map(|i| price + i as f64).collect(),
                    }),
                    3 => (Opcode::BuySample, Response::BuySample { price, rows: a, digest: b }),
                    4 => (Opcode::Execute, Response::Execute { price, rows: a, digest: b }),
                    5 => (Opcode::Repin, Response::Repin { version: b }),
                    6 => (Opcode::Stats, Response::Stats(StatsSnapshot {
                        sessions_open: a, requests_served: b, replay_hits: a ^ b,
                        ..StatsSnapshot::default()
                    })),
                    7 => (Opcode::CloseSession, Response::CloseSession {
                        seed: a, version: b, purchases: n, spent: price, remaining: price / 2.0,
                    }),
                    8 => (Opcode::Hello, Response::Hello {
                        version: (a % 8) as u16,
                        features: n,
                    }),
                    _ => (Opcode::ResumeSession, Response::Resume {
                        session: a, version: b, purchases: n,
                    }),
                };
                let reply = match fault_kind {
                    0 => Reply::Fault(Fault { code: FaultCode::Rejected, message: "rl".to_string() }),
                    1 => Reply::Fault(Fault { code: FaultCode::AtCapacity, message: format!("{a}/{b}") }),
                    2 => Reply::Fault(Fault { code: FaultCode::Budget, message: format!("{price}") }),
                    3 => Reply::Fault(Fault { code: FaultCode::Market, message: "unknown".to_string() }),
                    4 => Reply::Fault(Fault { code: FaultCode::Protocol, message: String::new() }),
                    5 => Reply::Fault(Fault::unknown_session(a)),
                    _ => Reply::Ok(resp),
                };
                let mut buf = Vec::new();
                encode_reply_v(&mut buf, version, a, opcode as u16, &reply);
                let h = peek_header(&buf, DEFAULT_MAX_PAYLOAD).unwrap().unwrap();
                prop_assert_eq!(h.version, version);
                prop_assert_eq!(h.opcode, opcode as u16 | RESP_BIT);
                let back = decode_reply_v(h.version, h.opcode, &buf[HEADER_LEN..]).unwrap();
                prop_assert_eq!(back, reply);
            }
        }
    }
}
