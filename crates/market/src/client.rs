//! `market::client` — a minimal blocking client for the [`crate::wire`]
//! protocol, used by the integration tests, the load harness and the
//! serving benches.
//!
//! The client separates **queueing** from **flushing** so callers can
//! pipeline: [`WireClient::queue`] encodes a request into the send buffer
//! and returns its request id, [`WireClient::flush`] writes the whole batch
//! in one syscall, and [`WireClient::recv_reply`] pops responses one at a
//! time (in arrival order, which the server guarantees equals request order
//! per connection). [`WireClient::call`] is the await-one convenience.
//!
//! With [`WireClient::recording`], every raw response frame is appended to
//! an in-memory transcript — the byte string the determinism contract is
//! stated over (see `tests/wire_service.rs`).

use crate::wire::{self, Reply, Request, WireError, HEADER_LEN};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking, pipelining-capable wire client over one TCP connection.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    send: Vec<u8>,
    recv: Vec<u8>,
    next_id: u64,
    record: bool,
    transcript: Vec<u8>,
}

fn protocol_io_error(e: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

impl WireClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            send: Vec::with_capacity(4 * 1024),
            recv: Vec::with_capacity(16 * 1024),
            next_id: 1,
            record: false,
            transcript: Vec::new(),
        })
    }

    /// Connect with transcript recording on: every raw response frame is
    /// appended to [`WireClient::transcript`] in arrival order.
    pub fn recording(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        let mut c = WireClient::connect(addr)?;
        c.record = true;
        Ok(c)
    }

    /// The raw response-frame transcript recorded so far.
    pub fn transcript(&self) -> &[u8] {
        &self.transcript
    }

    /// Encode `req` into the send buffer (no I/O) and return the request id
    /// it will be answered under. Ids are assigned 1, 2, 3… per connection,
    /// so a client's id sequence is deterministic.
    pub fn queue(&mut self, req: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        wire::encode_request(&mut self.send, id, req);
        id
    }

    /// Write every queued frame in one batch.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.send.is_empty() {
            self.stream.write_all(&self.send)?;
            self.send.clear();
        }
        Ok(())
    }

    /// Block until one complete response frame is available and decode it,
    /// returning `(request id, reply)`.
    pub fn recv_reply(&mut self) -> std::io::Result<(u64, Reply)> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(header) = wire::peek_header(&self.recv, wire::DEFAULT_MAX_PAYLOAD)
                .map_err(protocol_io_error)?
            {
                let frame_len = HEADER_LEN + header.payload_len as usize;
                if self.recv.len() >= frame_len {
                    let reply =
                        wire::decode_reply(header.opcode, &self.recv[HEADER_LEN..frame_len])
                            .map_err(protocol_io_error)?;
                    if self.record {
                        self.transcript.extend_from_slice(&self.recv[..frame_len]);
                    }
                    self.recv.drain(..frame_len);
                    return Ok((header.request_id, reply));
                }
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.recv.extend_from_slice(&scratch[..n]);
        }
    }

    /// Send one request and block for its reply (depth-1 convenience; use
    /// `queue`/`flush`/`recv_reply` to pipeline). Panics if the response id
    /// does not match — only valid when no other requests are in flight.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Reply> {
        let id = self.queue(req);
        self.flush()?;
        let (got, reply) = self.recv_reply()?;
        assert_eq!(got, id, "call() used with requests in flight");
        Ok(reply)
    }

    /// Queue a frame with an explicit raw opcode and payload — for tests
    /// exercising the server's hostile-input handling.
    pub fn send_raw_frame(&mut self, opcode: u16, request_id: u64, payload: &[u8]) {
        let start = self.send.len();
        self.send.extend_from_slice(&wire::MAGIC.to_le_bytes());
        self.send
            .extend_from_slice(&wire::PROTOCOL_VERSION.to_le_bytes());
        self.send.extend_from_slice(&opcode.to_le_bytes());
        self.send.extend_from_slice(&request_id.to_le_bytes());
        self.send
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.send.extend_from_slice(payload);
        debug_assert_eq!(self.send.len() - start, HEADER_LEN + payload.len());
    }

    /// Queue arbitrary bytes verbatim — for tests sending garbage.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) {
        self.send.extend_from_slice(bytes);
    }
}
