//! `market::client` — a blocking client for the [`crate::wire`] protocol
//! with bounded retries, automatic reconnect-and-resume, and optional
//! fault injection, used by the integration tests, the load harness and
//! the serving benches.
//!
//! The client separates **queueing** from **flushing** so callers can
//! pipeline: [`WireClient::queue`] encodes a request into the send buffer
//! and returns its request id, [`WireClient::flush`] writes the whole batch
//! in one syscall, and [`WireClient::recv_reply`] pops responses one at a
//! time (in arrival order, which the server guarantees equals request order
//! per connection). [`WireClient::call`] is the await-one convenience.
//!
//! **Deadlines.** Every receive path runs under a read deadline (default
//! [`DEFAULT_READ_TIMEOUT`], settable via
//! [`WireClientBuilder::read_timeout`]): a hung or dead-silent server
//! surfaces as [`WireError::Timeout`] wrapped in an `io::Error` of kind
//! `TimedOut` instead of blocking forever.
//!
//! **Resilience.** A client built with [`WireClient::builder`] performs
//! the protocol-v2 `Hello` handshake on connect and remembers the
//! [`crate::session::SessionToken`] of every session it opens. With a
//! [`RetryPolicy`] attached, [`WireClient::call`] becomes an exactly-once
//! retry loop: each attempt runs under `op_timeout`, failures tear the
//! connection down and reconnect (re-`Hello`, then `ResumeSession` for
//! every remembered token), attempts are bounded, and the backoff between
//! them is exponential with deterministic seeded jitter (the same
//! [`splitmix64`] + golden-ratio recipe the session layer's purchase seeds
//! use — two clients with the same policy seed back off identically).
//! Retried requests reuse their original request id, so the server's
//! replay cache answers duplicates with the recorded bytes and a purchase
//! is never charged twice.
//!
//! Handshake and resumption frames draw their request ids from a separate
//! control-id space ([`CTRL_ID_BASE`] upward) so the *logical* id sequence
//! (1, 2, 3…) is a pure function of the caller's call sequence no matter
//! how many reconnects happened in between — which is what keeps a chaos
//! run's recorded transcript byte-identical to the fault-free run (see
//! `tests/chaos_sweep.rs`).
//!
//! With recording on ([`WireClient::recording`] /
//! [`WireClientBuilder::recording`]), every raw response frame returned to
//! the caller is appended to an in-memory transcript — the byte string the
//! determinism contract is stated over (see `tests/wire_service.rs`).
//! Control frames and discarded stale duplicates are never recorded.

use crate::chaos::{ChaosConfig, ChaosStream, Transport};
use crate::wire::{self, FaultCode, Reply, Request, Response, WireError, HEADER_LEN};
use dance_relation::hash::splitmix64;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default read deadline for [`WireClient::recv_reply`] /
/// [`WireClient::call`] when no [`RetryPolicy`] narrows it.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// First request id of the control-frame id space (`Hello`,
/// `ResumeSession`). Logical requests count 1, 2, 3… from below; the two
/// spaces can never collide.
pub const CTRL_ID_BASE: u64 = 1 << 63;

/// Golden-ratio stride of the backoff-jitter sequence (the `splitmix64`
/// recipe shared with `purchase_seed` and `chain_seed`).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Bounded-retry configuration for [`WireClient::call`].
///
/// `attempts` bounds the whole loop (first try included); every attempt
/// runs under `op_timeout`; the pause before attempt `k` is
/// `min(base_backoff · 2^(k−1), max_backoff)` scaled by a deterministic
/// jitter factor in `[½, 1]` drawn from `splitmix64(seed ⊕ k·GOLDEN)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per logical request, first try included (≥ 1).
    pub attempts: u32,
    /// Read deadline for one attempt's reply.
    pub op_timeout: Duration,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            op_timeout: Duration::from_secs(2),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered pause before retry `attempt` (1-based): exponential in
    /// the attempt, capped, scaled into `[½, 1]` by the seeded stream.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let nanos = raw.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let draw = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(GOLDEN));
        let jittered = nanos / 2 + draw % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// The client's transport: a plain socket, or one wrapped in a seeded
/// fault injector.
#[derive(Debug)]
enum Conn {
    Plain(TcpStream),
    Chaos(ChaosStream<TcpStream>),
}

impl Conn {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Plain(s) => Transport::set_read_timeout(s, dur),
            Conn::Chaos(s) => Transport::set_read_timeout(s, dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.read(buf),
            Conn::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Plain(s) => s.write(buf),
            Conn::Chaos(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Plain(s) => s.flush(),
            Conn::Chaos(s) => s.flush(),
        }
    }
}

fn establish(addr: SocketAddr, chaos: Option<ChaosConfig>, salt: u64) -> io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(match chaos {
        None => Conn::Plain(stream),
        Some(cfg) => Conn::Chaos(ChaosStream::new(stream, cfg.derive(salt))),
    })
}

/// Configures and connects a [`WireClient`]. Built clients perform the
/// protocol-v2 `Hello` handshake on connect (unless [`v1`] opts out) and
/// so receive resumption tokens with every opened session.
///
/// [`v1`]: WireClientBuilder::v1
#[derive(Debug)]
pub struct WireClientBuilder {
    addr: Option<SocketAddr>,
    record: bool,
    chaos: Option<ChaosConfig>,
    retry: Option<RetryPolicy>,
    read_timeout: Duration,
    handshake: bool,
}

impl WireClientBuilder {
    /// Record every response frame returned to the caller into the
    /// transcript.
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// Inject deterministic faults into this client's transport: the first
    /// connection runs under `cfg.derive(0)`, reconnect `k` under
    /// `cfg.derive(k)`.
    pub fn chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }

    /// Attach a bounded retry/reconnect policy to [`WireClient::call`].
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Read deadline for receive paths not governed by a retry policy.
    pub fn read_timeout(mut self, dur: Duration) -> Self {
        self.read_timeout = dur;
        self
    }

    /// Skip the `Hello` handshake and speak protocol v1 (no resumption
    /// tokens), like [`WireClient::connect`].
    pub fn v1(mut self) -> Self {
        self.handshake = false;
        self
    }

    /// Connect (and handshake, unless [`v1`]). With a retry policy, the
    /// handshake itself is retried over fresh connections within the
    /// policy's attempt bound.
    ///
    /// [`v1`]: WireClientBuilder::v1
    pub fn connect(self) -> io::Result<WireClient> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address did not resolve")
        })?;
        let conn = establish(addr, self.chaos, 0)?;
        let mut c = WireClient {
            stream: conn,
            addr,
            chaos: self.chaos,
            retry: self.retry,
            read_timeout: self.read_timeout,
            stream_timeout: None,
            send: Vec::with_capacity(4 * 1024),
            recv: Vec::with_capacity(16 * 1024),
            next_id: 1,
            next_ctrl_id: CTRL_ID_BASE,
            version: wire::MIN_PROTOCOL_VERSION,
            handshaken: false,
            broken: false,
            reconnects: 0,
            record: self.record,
            transcript: Vec::new(),
            tokens: BTreeMap::new(),
        };
        if self.handshake {
            let policy = c.retry.unwrap_or(RetryPolicy {
                attempts: 1,
                op_timeout: c.read_timeout,
                ..RetryPolicy::default()
            });
            let mut last: Option<io::Error> = None;
            let mut done = false;
            for attempt in 0..policy.attempts.max(1) {
                if attempt > 0 {
                    std::thread::sleep(policy.backoff(attempt));
                    if c.broken {
                        if let Err(e) = c.raw_reconnect() {
                            last = Some(e);
                            continue;
                        }
                    }
                }
                match c.hello() {
                    Ok(_) => {
                        done = true;
                        break;
                    }
                    Err(e) => {
                        c.broken = true;
                        last = Some(e);
                    }
                }
            }
            if !done {
                return Err(last.unwrap_or_else(timeout_error));
            }
            c.handshaken = true;
        }
        Ok(c)
    }
}

/// A blocking, pipelining-capable wire client over one TCP connection
/// (which it transparently re-establishes under a [`RetryPolicy`]).
#[derive(Debug)]
pub struct WireClient {
    stream: Conn,
    addr: SocketAddr,
    chaos: Option<ChaosConfig>,
    retry: Option<RetryPolicy>,
    read_timeout: Duration,
    /// The read timeout currently set on the socket, so the hot receive
    /// path only pays the setsockopt when the deadline actually changes.
    stream_timeout: Option<Duration>,
    send: Vec<u8>,
    recv: Vec<u8>,
    next_id: u64,
    next_ctrl_id: u64,
    /// Frame version requests are encoded at (1 until a `Hello` upgrades).
    version: u16,
    /// `Hello` completed: reconnects re-handshake and resume sessions.
    handshaken: bool,
    /// The connection is known dead; the next retry attempt reconnects.
    broken: bool,
    reconnects: u64,
    record: bool,
    transcript: Vec<u8>,
    /// Session id → resumption token for every v2 session opened through
    /// this client (sorted, so resumption order is deterministic).
    tokens: BTreeMap<u64, u64>,
}

fn protocol_io_error(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn timeout_error() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, WireError::Timeout)
}

impl WireClient {
    /// Connect speaking protocol v1, no handshake, no retries — the
    /// pre-resumption client, byte-compatible with the v1 frame stream.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        WireClient::builder(addr).v1().connect()
    }

    /// [`WireClient::connect`] with transcript recording on: every raw
    /// response frame returned to the caller is appended to
    /// [`WireClient::transcript`] in arrival order.
    pub fn recording(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        WireClient::builder(addr).v1().recording().connect()
    }

    /// Start configuring a resilient (protocol-v2) client.
    pub fn builder(addr: impl ToSocketAddrs) -> WireClientBuilder {
        WireClientBuilder {
            addr: addr.to_socket_addrs().ok().and_then(|mut it| it.next()),
            record: false,
            chaos: None,
            retry: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            handshake: true,
        }
    }

    /// The raw response-frame transcript recorded so far.
    pub fn transcript(&self) -> &[u8] {
        &self.transcript
    }

    /// The most recently assigned logical request id (0 before the first).
    pub fn last_id(&self) -> u64 {
        self.next_id - 1
    }

    /// The frame version this client currently encodes at (1, or the
    /// `Hello`-negotiated version).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Connections re-established by the retry layer.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Encode `req` into the send buffer (no I/O) and return the request id
    /// it will be answered under. Ids are assigned 1, 2, 3… per client —
    /// control frames (handshake/resume) draw from a disjoint space — so
    /// the logical id sequence is deterministic.
    pub fn queue(&mut self, req: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        wire::encode_request_v(&mut self.send, self.version, id, req);
        id
    }

    /// Re-encode `req` under an already-assigned request id and flush it —
    /// an explicit retry. Against a v2 server the duplicate id is answered
    /// from the replay cache with the originally recorded bytes.
    pub fn resend(&mut self, request_id: u64, req: &Request) -> io::Result<()> {
        wire::encode_request_v(&mut self.send, self.version, request_id, req);
        self.flush()
    }

    /// Write every queued frame in one batch.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.send.is_empty() {
            self.stream.write_all(&self.send)?;
            self.send.clear();
        }
        Ok(())
    }

    /// Ensure the socket's read timeout equals `dur` (skipping the syscall
    /// when it already does).
    fn set_stream_timeout(&mut self, dur: Duration) -> io::Result<()> {
        let dur = dur.max(Duration::from_millis(1));
        if self.stream_timeout != Some(dur) {
            self.stream.set_read_timeout(Some(dur))?;
            self.stream_timeout = Some(dur);
        }
        Ok(())
    }

    /// Block until one complete frame heads the receive buffer (deadline
    /// `deadline`), returning its header and total length. The frame stays
    /// in the buffer for [`WireClient::take_reply`] or a discarding drain.
    fn next_frame(&mut self, deadline: Duration) -> io::Result<(wire::FrameHeader, usize)> {
        let start = Instant::now();
        let mut scratch = [0u8; 16 * 1024];
        let mut first = true;
        while first || start.elapsed() < deadline {
            first = false;
            if let Some(h) = wire::peek_header(&self.recv, wire::DEFAULT_MAX_PAYLOAD)
                .map_err(protocol_io_error)?
            {
                let frame_len = HEADER_LEN + h.payload_len as usize;
                if self.recv.len() >= frame_len {
                    return Ok((h, frame_len));
                }
            }
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                break;
            }
            self.set_stream_timeout(remaining)?;
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.recv.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        Err(timeout_error())
    }

    /// Decode (and optionally record) the complete frame heading the
    /// receive buffer, draining it. Learns resumption tokens from v2
    /// `OpenSession` replies as they pass through.
    fn take_reply(
        &mut self,
        h: &wire::FrameHeader,
        frame_len: usize,
        record: bool,
    ) -> io::Result<Reply> {
        let reply = wire::decode_reply_v(h.version, h.opcode, &self.recv[HEADER_LEN..frame_len])
            .map_err(protocol_io_error)?;
        if record && self.record && h.request_id < CTRL_ID_BASE {
            self.transcript.extend_from_slice(&self.recv[..frame_len]);
        }
        self.recv.drain(..frame_len);
        if let Reply::Ok(Response::OpenSession { session, token, .. }) = &reply {
            if *token != 0 {
                self.tokens.insert(*session, *token);
            }
        }
        Ok(reply)
    }

    /// Block until one complete response frame is available and decode it,
    /// returning `(request id, reply)`. Returns a `TimedOut` error wrapping
    /// [`WireError::Timeout`] once the read deadline expires.
    pub fn recv_reply(&mut self) -> io::Result<(u64, Reply)> {
        let (h, frame_len) = self.next_frame(self.read_timeout)?;
        let reply = self.take_reply(&h, frame_len, true)?;
        Ok((h.request_id, reply))
    }

    /// Await the reply for `request_id` under `deadline`, draining (without
    /// recording) stale frames from earlier timed-out attempts.
    fn await_reply(
        &mut self,
        request_id: u64,
        deadline: Duration,
        record: bool,
    ) -> io::Result<Reply> {
        let start = Instant::now();
        let mut first = true;
        while first || start.elapsed() < deadline {
            first = false;
            let remaining = deadline.saturating_sub(start.elapsed());
            let (h, frame_len) = self.next_frame(remaining.max(Duration::from_millis(1)))?;
            if h.request_id != request_id {
                // A stale duplicate (or a reply the caller abandoned on a
                // previous timeout): server replays are byte-identical, so
                // dropping it loses nothing.
                self.recv.drain(..frame_len);
                continue;
            }
            return self.take_reply(&h, frame_len, record);
        }
        Err(timeout_error())
    }

    /// Send one request and block for its reply. Without a [`RetryPolicy`]
    /// this is the depth-1 convenience over `queue`/`flush`/`recv_reply`
    /// (and panics if the response id does not match — only valid with no
    /// other requests in flight). With a policy, failures reconnect,
    /// resume and retry under the original request id, bounded by
    /// `attempts`.
    pub fn call(&mut self, req: &Request) -> io::Result<Reply> {
        match self.retry {
            None => {
                let id = self.queue(req);
                self.flush()?;
                let (got, reply) = self.recv_reply()?;
                assert_eq!(got, id, "call() used with requests in flight");
                Ok(reply)
            }
            Some(policy) => self.call_with_retry(req, policy),
        }
    }

    fn call_with_retry(&mut self, req: &Request, policy: RetryPolicy) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let mut last: Option<io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt));
            }
            if self.broken {
                if let Err(e) = self.reconnect(&policy) {
                    last = Some(e);
                    continue;
                }
            }
            self.send.clear();
            wire::encode_request_v(&mut self.send, self.version, id, req);
            if let Err(e) = self.flush() {
                self.broken = true;
                last = Some(e);
                continue;
            }
            match self.await_reply(id, policy.op_timeout, true) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Timeouts reconnect too: the attempt's fate is
                    // ambiguous, and the replay cache makes the retry safe.
                    self.broken = true;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(timeout_error))
    }

    /// The deadline control exchanges run under: the retry policy's
    /// per-attempt timeout if one is set, else the client read deadline.
    fn ctrl_deadline(&self) -> Duration {
        self.retry.map_or(self.read_timeout, |p| p.op_timeout)
    }

    /// Run the `Hello` handshake: offer [`wire::PROTOCOL_VERSION`] and all
    /// feature bits, adopt the accepted version for subsequent frames, and
    /// return `(version, features)` as granted by the server.
    pub fn hello(&mut self) -> io::Result<(u16, u32)> {
        let id = self.next_ctrl_id;
        self.next_ctrl_id += 1;
        wire::encode_request_v(
            &mut self.send,
            self.version,
            id,
            &Request::Hello {
                version: wire::PROTOCOL_VERSION,
                features: wire::SERVER_FEATURES,
            },
        );
        self.flush()?;
        let deadline = self.ctrl_deadline();
        match self.await_reply(id, deadline, false)? {
            Reply::Ok(Response::Hello { version, features }) => {
                self.version = version.clamp(wire::MIN_PROTOCOL_VERSION, wire::PROTOCOL_VERSION);
                Ok((version, features))
            }
            Reply::Fault(f) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                f.to_string(),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply: {other:?}"),
            )),
        }
    }

    /// Tear down and re-establish the transport without handshaking.
    fn raw_reconnect(&mut self) -> io::Result<()> {
        self.reconnects += 1;
        self.stream = establish(self.addr, self.chaos, self.reconnects)?;
        self.stream_timeout = None;
        self.recv.clear();
        self.send.clear();
        self.broken = false;
        Ok(())
    }

    /// Reconnect fully: fresh transport, re-`Hello`, and `ResumeSession`
    /// for every remembered token (in session-id order). Any failure marks
    /// the connection broken again for the caller's bounded loop.
    fn reconnect(&mut self, policy: &RetryPolicy) -> io::Result<()> {
        self.raw_reconnect()?;
        let r = self.handshake_and_resume(policy);
        if r.is_err() {
            self.broken = true;
        }
        r
    }

    fn handshake_and_resume(&mut self, policy: &RetryPolicy) -> io::Result<()> {
        if !self.handshaken {
            return Ok(());
        }
        self.hello()?;
        let tokens: Vec<(u64, u64)> = self.tokens.iter().map(|(s, t)| (*s, *t)).collect();
        for (session, token) in tokens {
            self.resume_one(session, token, policy)?;
        }
        Ok(())
    }

    /// Re-attach one parked session, retrying `session busy` answers (the
    /// dead connection's worker may not have parked it yet) within the
    /// policy's attempt bound.
    fn resume_one(&mut self, session: u64, token: u64, policy: &RetryPolicy) -> io::Result<()> {
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt));
            }
            let id = self.next_ctrl_id;
            self.next_ctrl_id += 1;
            wire::encode_request_v(&mut self.send, self.version, id, &Request::Resume { token });
            self.flush()?;
            match self.await_reply(id, policy.op_timeout, false)? {
                Reply::Ok(Response::Resume { .. }) => return Ok(()),
                Reply::Fault(f) if f.code == FaultCode::Rejected => {
                    // Still attached to the dying connection; back off and
                    // let its worker park the session.
                }
                Reply::Fault(_) => {
                    // Unknown or expired token: the session was closed or
                    // reclaimed — nothing left to resume.
                    self.tokens.remove(&session);
                    return Ok(());
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected resume reply: {other:?}"),
                    ))
                }
            }
        }
        Err(timeout_error())
    }

    /// Queue a frame with an explicit raw opcode and payload — for tests
    /// exercising the server's hostile-input handling.
    pub fn send_raw_frame(&mut self, opcode: u16, request_id: u64, payload: &[u8]) {
        let start = self.send.len();
        self.send.extend_from_slice(&wire::MAGIC.to_le_bytes());
        self.send.extend_from_slice(&self.version.to_le_bytes());
        self.send.extend_from_slice(&opcode.to_le_bytes());
        self.send.extend_from_slice(&request_id.to_le_bytes());
        self.send
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.send.extend_from_slice(payload);
        debug_assert_eq!(self.send.len() - start, HEADER_LEN + payload.len());
    }

    /// Queue arbitrary bytes verbatim — for tests sending garbage.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) {
        self.send.extend_from_slice(bytes);
    }
}
