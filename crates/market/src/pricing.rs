//! Query-based pricing (Balazinska et al. \[6\], Koutris et al. \[16\]).
//!
//! The experiments "use the entropy-based model … to assign the price to
//! data" (§6.1). We price a projection query `π_A(D)` as
//!
//! ```text
//! price(π_A(D)) = scale · ( H_D(A) + floor · |A| ) · rows(D)^γ
//! ```
//!
//! where `H_D(A)` is the joint Shannon entropy of the projected attributes —
//! information content is what the shopper pays for — `floor` guarantees a
//! constant column still costs something, and `rows^γ` lets bigger instances
//! cost more.
//!
//! **Arbitrage-freedom.** Deep & Koutris \[8\] show a pricing function that is
//! monotone and subadditive over query results admits no arbitrage. Both hold
//! here because entropy does: `H(A∪B) ≥ H(A)` (monotonicity) and
//! `H(A∪B) ≤ H(A) + H(B)` (subadditivity), and the attribute floor preserves
//! both. The property tests at the bottom check exactly these two laws on
//! random tables.

use dance_info::entropy::shannon_entropy;
use dance_relation::{AttrSet, Result, Table};

/// A model that prices projection queries against a concrete instance.
pub trait PricingModel {
    /// Price of `π_attrs(t)`. `attrs` must be part of `t`'s schema.
    fn price(&self, t: &Table, attrs: &AttrSet) -> Result<f64>;

    /// Price of a `rate`-sample of `π_attrs(t)` — pro-rata by default, which
    /// keeps sample prices arbitrage-free w.r.t. the full query price.
    fn sample_price(&self, t: &Table, attrs: &AttrSet, rate: f64) -> Result<f64> {
        Ok(self.price(t, attrs)? * rate.clamp(0.0, 1.0))
    }
}

/// The entropy-based pricing model used throughout the experiments.
#[derive(Debug, Clone, Copy)]
pub struct EntropyPricing {
    /// Global currency scale.
    pub scale: f64,
    /// Per-attribute price floor (entropy units).
    pub floor: f64,
    /// Row-count exponent γ (0 ⇒ size-independent pricing).
    pub row_exponent: f64,
}

impl Default for EntropyPricing {
    fn default() -> Self {
        EntropyPricing {
            scale: 1.0,
            floor: 0.25,
            row_exponent: 0.0,
        }
    }
}

impl PricingModel for EntropyPricing {
    fn price(&self, t: &Table, attrs: &AttrSet) -> Result<f64> {
        if attrs.is_empty() {
            return Ok(0.0);
        }
        // Validate attribute presence for a clean error.
        for id in attrs.iter() {
            t.schema().require(id)?;
        }
        let h = shannon_entropy(t, attrs)?;
        let size_factor = (t.num_rows().max(1) as f64).powf(self.row_exponent);
        Ok(self.scale * (h + self.floor * attrs.len() as f64) * size_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{Table, Value, ValueType};

    fn table() -> Table {
        Table::from_rows(
            "p",
            &[
                ("pr_a", ValueType::Int),
                ("pr_b", ValueType::Str),
                ("pr_c", ValueType::Int),
            ],
            (0..64)
                .map(|i| {
                    vec![
                        Value::Int(i % 8),
                        Value::str(["x", "y"][i as usize % 2]),
                        Value::Int(7), // constant column
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn monotone_in_attributes() {
        let t = table();
        let m = EntropyPricing::default();
        let pa = m.price(&t, &AttrSet::from_names(["pr_a"])).unwrap();
        let pab = m.price(&t, &AttrSet::from_names(["pr_a", "pr_b"])).unwrap();
        assert!(pab >= pa);
    }

    #[test]
    fn subadditive_in_attributes() {
        let t = table();
        let m = EntropyPricing::default();
        let pa = m.price(&t, &AttrSet::from_names(["pr_a"])).unwrap();
        let pb = m.price(&t, &AttrSet::from_names(["pr_b"])).unwrap();
        let pab = m.price(&t, &AttrSet::from_names(["pr_a", "pr_b"])).unwrap();
        assert!(pab <= pa + pb + 1e-9);
    }

    #[test]
    fn constant_column_still_costs_the_floor() {
        let t = table();
        let m = EntropyPricing::default();
        let pc = m.price(&t, &AttrSet::from_names(["pr_c"])).unwrap();
        assert!((pc - 0.25).abs() < 1e-12, "pc = {pc}");
    }

    #[test]
    fn sample_price_pro_rata() {
        let t = table();
        let m = EntropyPricing::default();
        let full = m.price(&t, &AttrSet::from_names(["pr_a"])).unwrap();
        let half = m
            .sample_price(&t, &AttrSet::from_names(["pr_a"]), 0.5)
            .unwrap();
        assert!((half - 0.5 * full).abs() < 1e-12);
        // Rate clamped.
        let over = m
            .sample_price(&t, &AttrSet::from_names(["pr_a"]), 2.0)
            .unwrap();
        assert!((over - full).abs() < 1e-12);
    }

    #[test]
    fn row_exponent_scales_price() {
        let t = table();
        let flat = EntropyPricing {
            row_exponent: 0.0,
            ..EntropyPricing::default()
        };
        let sized = EntropyPricing {
            row_exponent: 1.0,
            ..EntropyPricing::default()
        };
        let a = AttrSet::from_names(["pr_a"]);
        let p_flat = flat.price(&t, &a).unwrap();
        let p_sized = sized.price(&t, &a).unwrap();
        assert!((p_sized / p_flat - 64.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_attribute_is_error_and_empty_is_free() {
        let t = table();
        let m = EntropyPricing::default();
        assert!(m.price(&t, &AttrSet::from_names(["pr_missing"])).is_err());
        assert_eq!(m.price(&t, &AttrSet::empty()).unwrap(), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random small tables: 2–5 int columns, values in a small domain so
        /// entropies are non-trivial.
        fn arb_table() -> impl Strategy<Value = Table> {
            (2usize..=5, 1usize..=40, 0u64..1000).prop_map(|(ncols, nrows, seed)| {
                let attrs: Vec<(String, ValueType)> = (0..ncols)
                    .map(|c| (format!("prop_col{c}"), ValueType::Int))
                    .collect();
                let attr_refs: Vec<(&str, ValueType)> =
                    attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                let rows: Vec<Vec<Value>> = (0..nrows)
                    .map(|r| {
                        (0..ncols)
                            .map(|c| {
                                let h = dance_relation::hash::stable_hash64(
                                    seed,
                                    &(r as u64 * 31 + c as u64),
                                );
                                Value::Int((h % 5) as i64)
                            })
                            .collect()
                    })
                    .collect();
                Table::from_rows("prop", &attr_refs, rows).unwrap()
            })
        }

        proptest! {
            /// Arbitrage-freedom precondition 1: monotonicity.
            #[test]
            fn price_is_monotone(t in arb_table(), mask_a in 1u32..31, mask_b in 1u32..31) {
                let ids: Vec<_> = t.schema().attributes().iter().map(|a| a.id).collect();
                let pick = |mask: u32| {
                    AttrSet::from_ids(
                        ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &id)| id),
                    )
                };
                let a = pick(mask_a);
                let ab = pick(mask_a | mask_b);
                prop_assume!(!a.is_empty());
                let m = EntropyPricing::default();
                let pa = m.price(&t, &a).unwrap();
                let pab = m.price(&t, &ab).unwrap();
                prop_assert!(pab >= pa - 1e-9, "monotonicity violated: {pa} > {pab}");
            }

            /// Arbitrage-freedom precondition 2: subadditivity.
            #[test]
            fn price_is_subadditive(t in arb_table(), mask_a in 1u32..31, mask_b in 1u32..31) {
                let ids: Vec<_> = t.schema().attributes().iter().map(|a| a.id).collect();
                let pick = |mask: u32| {
                    AttrSet::from_ids(
                        ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &id)| id),
                    )
                };
                let a = pick(mask_a);
                let b = pick(mask_b);
                prop_assume!(!a.is_empty() && !b.is_empty());
                let m = EntropyPricing::default();
                let pa = m.price(&t, &a).unwrap();
                let pb = m.price(&t, &b).unwrap();
                let pu = m.price(&t, &a.union(&b)).unwrap();
                prop_assert!(pu <= pa + pb + 1e-9, "subadditivity violated: {pu} > {pa} + {pb}");
            }

            /// Prices are non-negative and zero only for empty projections.
            #[test]
            fn price_positive(t in arb_table(), mask in 1u32..31) {
                let ids: Vec<_> = t.schema().attributes().iter().map(|a| a.id).collect();
                let a = AttrSet::from_ids(
                    ids.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, &id)| id),
                );
                prop_assume!(!a.is_empty());
                let m = EntropyPricing::default();
                prop_assert!(m.price(&t, &a).unwrap() > 0.0);
            }
        }
    }
}
