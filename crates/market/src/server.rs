//! `market::server` — a multi-worker TCP server exposing the acquisition
//! session service over the [`crate::wire`] protocol.
//!
//! Architecture (std-only, like `dance-executor` — no async runtime):
//!
//! * one **acceptor** thread takes connections off a `TcpListener` and
//!   pushes them onto a bounded backlog queue — when the queue is full the
//!   configured policy either blocks the acceptor (queue) or answers the
//!   connection with a single `Rejected` fault frame and drops it (reject);
//! * a fixed pool of **worker** threads pops connections and serves each to
//!   completion. One connection is owned by one worker at a time, so the
//!   sessions opened on it live in plain worker-local state and the session
//!   layer stays lock-free.
//!
//! **Pipelining:** a client may keep many requests in flight on one
//! connection. The worker drains every complete frame from the receive
//! buffer, handles them in arrival order, and writes all responses back in
//! one batch — responses carry the client's request id and are written in
//! completion order (which, on a single connection, equals request order, so
//! transcripts stay deterministic).
//!
//! **Hot path allocation:** each connection owns a receive buffer, a send
//! buffer and a fixed stack scratch block, all reused across requests — a
//! CI grep-guard keeps per-request allocation and string formatting out of
//! this file (fault-message construction lives in [`crate::wire`]).
//!
//! **Admission control** beyond the session manager's hard `AtCapacity`:
//! per-shopper token buckets (configurable rate + burst; `Stats` requests
//! are exempt) answer over-limit requests with `Rejected` faults rather
//! than hangs, and the bounded accept backlog sheds load at the edge. All
//! of it is surfaced in [`StatsSnapshot`] via [`Server::stats`].
//!
//! **Resilience** (protocol v2): sessions opened under v2 frames survive
//! their connection. When a connection dies, its v2 sessions are **parked**
//! in a token registry (if the manager has an idle lease configured) and a
//! fresh connection re-attaches them with `ResumeSession` + the
//! [`crate::session::SessionToken`] from the open reply; parked sessions
//! whose lease expires are reclaimed, releasing their capacity slot. Every
//! v2 session carries a bounded **replay cache** keyed by request id plus a
//! digest of the request bytes (ids restart when a fresh client resumes a
//! parked session, so the id alone is not a request identity): a retried
//! mutating op (`BuySample`/`Execute`…) after an ambiguous failure
//! is answered with the recorded reply bytes instead of re-executing, so
//! the ledger is never double-charged — and retried `OpenSession` /
//! `CloseSession` frames are deduplicated the same way through the shared
//! registry. Mid-frame read stalls and slow writes are bounded by
//! [`ServerConfig::io_deadline`] so a slow-loris peer cannot pin a worker
//! (idle connections between frames are unaffected). Workers are generic
//! over [`Transport`], and [`ServerConfig::chaos`] splices a seeded
//! fault-injecting [`ChaosStream`] under every accepted connection for
//! deterministic failure testing.

use crate::chaos::{ChaosConfig, ChaosStream, Transport};
use crate::session::{Session, SessionConfig, SessionManager};
use crate::wire::{
    self, Fault, Reply, Request, Response, StatsSnapshot, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-shopper rate limit: a token bucket refilled at `per_sec`, holding at
/// most `burst` tokens; every request except `Stats` costs one token.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Sustained requests/second per shopper.
    pub per_sec: f64,
    /// Burst capacity (initial fill and cap).
    pub burst: f64,
}

/// What the acceptor does when the backlog queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacklogPolicy {
    /// Block the acceptor until a worker frees a slot.
    Queue,
    /// Answer the connection with one `Rejected` fault frame and drop it.
    Reject,
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded accept-backlog capacity (connections waiting for a worker).
    pub backlog: usize,
    /// Queue-or-reject policy when the backlog is full.
    pub on_full: BacklogPolicy,
    /// Optional per-shopper token-bucket rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Frame payload cap enforced at the header.
    pub max_payload: u32,
    /// Slow-loris bound: a connection that leaves a frame incomplete in the
    /// receive buffer (or blocks a response write) longer than this is
    /// closed and counted in [`StatsSnapshot::timeouts`]. Connections idle
    /// *between* frames are never timed out.
    pub io_deadline: Duration,
    /// Deterministic fault injection: wrap every accepted connection in a
    /// [`ChaosStream`] seeded per connection from this config.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            on_full: BacklogPolicy::Reject,
            rate_limit: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            io_deadline: Duration::from_secs(5),
            chaos: None,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_served: AtomicU64,
    rate_limited: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
    resumes: AtomicU64,
    replay_hits: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, now: Instant, limit: &RateLimit) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.per_sec).min(limit.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Bounded per-session cache of encoded reply frames keyed by request id
/// *and* a digest of the request bytes — the exactly-once half of the retry
/// contract. The digest matters after a resume: a fresh client re-attaching
/// to a parked session restarts its id sequence, so a new request can wear
/// an id the dead connection already used. Only a true retry — same id,
/// same bytes — replays. Evicted entries donate their buffers to new ones,
/// so a steady-state session allocates nothing here.
#[derive(Debug, Default)]
struct ReplayCache {
    entries: VecDeque<(u64, u64, Vec<u8>)>,
}

/// Replies remembered per session for retried request ids.
const REPLAY_CAP: usize = 64;

impl ReplayCache {
    fn get(&self, request_id: u64, digest: u64) -> Option<&[u8]> {
        self.entries
            .iter()
            .rev()
            .find(|(id, d, _)| *id == request_id && *d == digest)
            .map(|(_, _, frame)| frame.as_slice())
    }

    fn put(&mut self, request_id: u64, digest: u64, frame: &[u8]) {
        let mut buf = if self.entries.len() >= REPLAY_CAP {
            self.entries
                .pop_front()
                .map(|(_, _, b)| b)
                .unwrap_or_default()
        } else {
            Vec::with_capacity(frame.len())
        };
        buf.clear();
        buf.extend_from_slice(frame);
        self.entries.push_back((request_id, digest, buf));
    }
}

/// FNV-1a over the request payload, seeded with the opcode: the identity a
/// retried frame must reproduce (besides its id) to be answered from a
/// replay cache instead of re-executed.
fn request_digest(opcode: u16, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(opcode);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A session detached from its (dead) connection, waiting out its lease
/// for a `ResumeSession`.
#[derive(Debug)]
struct Parked {
    shopper: u64,
    session: Session,
    replay: ReplayCache,
    since: Instant,
}

/// Where a resumable session currently lives.
#[derive(Debug)]
enum TokenEntry {
    /// Owned by the worker serving connection `conn`.
    Attached {
        /// Owning connection id.
        conn: u64,
    },
    /// Orphaned; resumable until its lease expires.
    Parked(Box<Parked>),
}

/// One remembered `OpenSession` outcome, for retried opens.
#[derive(Debug)]
struct OpenRecord {
    session: u64,
    token: u64,
    digest: u64,
    frame: Vec<u8>,
}

/// One remembered `CloseSession` outcome (a tombstone), for retried closes
/// after the session is gone.
#[derive(Debug)]
struct CloseRecord {
    request_id: u64,
    digest: u64,
    frame: Vec<u8>,
}

/// Retried opens remembered across the whole server (FIFO-bounded).
const OPEN_DEDUP_CAP: usize = 1024;

/// Close tombstones remembered across the whole server (FIFO-bounded).
const CLOSE_DEDUP_CAP: usize = 1024;

/// The resumption registry: token → session location, plus the
/// server-level exactly-once records for opens and closes. One mutex,
/// touched only on open/close/resume/park/sweep — never on the quote or
/// purchase hot path.
#[derive(Debug, Default)]
struct Registry {
    tokens: HashMap<u64, TokenEntry>,
    opens: HashMap<(u64, u64), OpenRecord>,
    open_order: VecDeque<(u64, u64)>,
    closes: HashMap<u64, CloseRecord>,
    close_order: VecDeque<u64>,
}

impl Registry {
    fn record_open(
        &mut self,
        key: (u64, u64),
        session: u64,
        token: u64,
        digest: u64,
        frame: &[u8],
    ) {
        let mut buf = if self.open_order.len() >= OPEN_DEDUP_CAP {
            match self.open_order.pop_front() {
                Some(old) => self.opens.remove(&old).map(|r| r.frame).unwrap_or_default(),
                None => Vec::with_capacity(frame.len()),
            }
        } else {
            Vec::with_capacity(frame.len())
        };
        buf.clear();
        buf.extend_from_slice(frame);
        if self
            .opens
            .insert(
                key,
                OpenRecord {
                    session,
                    token,
                    digest,
                    frame: buf,
                },
            )
            .is_none()
        {
            self.open_order.push_back(key);
        }
    }

    fn record_close(&mut self, session: u64, request_id: u64, digest: u64, frame: &[u8]) {
        let mut buf = if self.close_order.len() >= CLOSE_DEDUP_CAP {
            match self.close_order.pop_front() {
                Some(old) => self
                    .closes
                    .remove(&old)
                    .map(|r| r.frame)
                    .unwrap_or_default(),
                None => Vec::with_capacity(frame.len()),
            }
        } else {
            Vec::with_capacity(frame.len())
        };
        buf.clear();
        buf.extend_from_slice(frame);
        if self
            .closes
            .insert(
                session,
                CloseRecord {
                    request_id,
                    digest,
                    frame: buf,
                },
            )
            .is_none()
        {
            self.close_order.push_back(session);
        }
    }
}

/// State shared by the acceptor, the workers and the [`Server`] handle.
#[derive(Debug)]
struct Shared {
    mgr: Arc<SessionManager>,
    cfg: ServerConfig,
    stop: AtomicBool,
    queue: Mutex<VecDeque<(u64, TcpStream)>>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: Counters,
    buckets: Mutex<HashMap<u64, TokenBucket>>,
    registry: Mutex<Registry>,
    next_conn: AtomicU64,
}

impl Shared {
    fn stats(&self) -> StatsSnapshot {
        // A stats read doubles as a lease sweep, so `sessions_open` never
        // counts sessions whose lease has already lapsed.
        sweep_leases(self);
        let m = self.mgr.stats();
        StatsSnapshot {
            sessions_open: m.open as u64,
            sessions_opened: m.opened as u64,
            sessions_closed: m.closed as u64,
            sessions_rejected: m.rejected as u64,
            sessions_peak_open: m.peak_open as u64,
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.counters.connections_rejected.load(Ordering::Relaxed),
            requests_served: self.counters.requests_served.load(Ordering::Relaxed),
            rate_limited: self.counters.rate_limited.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            resumes: self.counters.resumes.load(Ordering::Relaxed),
            replay_hits: self.counters.replay_hits.load(Ordering::Relaxed),
            leases_reclaimed: m.reclaimed as u64,
        }
    }

    /// Charge one token to `shopper`'s bucket; `true` means admitted.
    fn admit(&self, shopper: u64) -> bool {
        let Some(limit) = self.cfg.rate_limit else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(shopper).or_insert(TokenBucket {
            tokens: limit.burst,
            last: now,
        });
        bucket.try_take(now, &limit)
    }
}

/// Reclaim parked sessions whose idle lease has expired. Dropping the
/// parked entry drops its [`Session`], which releases the capacity slot.
fn sweep_leases(shared: &Shared) {
    let Some(lease) = shared.mgr.lease() else {
        return;
    };
    let now = Instant::now();
    let mut reg = shared.registry.lock().unwrap();
    let before = reg.tokens.len();
    reg.tokens.retain(|_, entry| match entry {
        TokenEntry::Parked(p) => now.duration_since(p.since) < lease,
        TokenEntry::Attached { .. } => true,
    });
    let reclaimed = before - reg.tokens.len();
    drop(reg);
    shared.mgr.record_reclaimed(reclaimed);
}

/// A running wire server over one [`SessionManager`]. Dropping the handle
/// without [`Server::shutdown`] leaves the threads running detached — call
/// `shutdown` for a clean stop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind a loopback listener on an ephemeral port and start the acceptor
    /// plus `cfg.workers` worker threads.
    pub fn start(mgr: Arc<SessionManager>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            mgr,
            cfg,
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::with_capacity(cfg.backlog)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            counters: Counters::default(),
            buckets: Mutex::new(HashMap::with_capacity(64)),
            registry: Mutex::new(Registry::default()),
            next_conn: AtomicU64::new(1),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Combined service counters: session-manager stats plus the server's
    /// connection/request/admission counters. Reading stats also sweeps
    /// expired leases.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Stop accepting, wake every thread, join them all, and return the
    /// final counters. In-flight connections notice the stop flag at their
    /// next read-timeout tick (≤ ~50ms) and close.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway connect.
        drop(TcpStream::connect(self.addr));
        // Take the queue lock once so no thread can miss the wakeup between
        // its stop-check and its condvar wait.
        drop(self.shared.queue.lock().unwrap());
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(a) = self.acceptor.take() {
            drop(a.join());
        }
        for w in self.workers.drain(..) {
            drop(w.join());
        }
        self.shared.stats()
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let conn = listener.accept();
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let mut q = shared.queue.lock().unwrap();
        if q.len() >= shared.cfg.backlog {
            match shared.cfg.on_full {
                BacklogPolicy::Reject => {
                    drop(q);
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream);
                    continue;
                }
                BacklogPolicy::Queue => {
                    while q.len() >= shared.cfg.backlog {
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        q = shared.not_full.wait(q).unwrap();
                    }
                }
            }
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        q.push_back((conn_id, stream));
        drop(q);
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared.not_empty.notify_one();
    }
}

/// Answer a shed connection with one connection-level `Rejected` frame
/// (request id 0, fault-only opcode) so the client sees a clean refusal
/// instead of a silent close.
fn reject_connection(mut stream: TcpStream) {
    use std::io::Write;
    let mut frame = Vec::with_capacity(64);
    wire::encode_reply(
        &mut frame,
        0,
        0,
        &Reply::Fault(Fault::rejected("accept backlog full; retry later")),
    );
    drop(stream.write_all(&frame));
}

fn worker_loop(shared: &Shared) {
    while let Some((conn_id, stream)) = next_connection(shared) {
        drop(stream.set_nodelay(true));
        match shared.cfg.chaos {
            None => serve_connection(shared, stream, conn_id),
            Some(chaos) => serve_connection(
                shared,
                ChaosStream::new(stream, chaos.derive(conn_id)),
                conn_id,
            ),
        }
    }
}

fn next_connection(shared: &Shared) -> Option<(u64, TcpStream)> {
    let mut q = shared.queue.lock().unwrap();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(conn) = q.pop_front() {
            shared.not_full.notify_one();
            return Some(conn);
        }
        q = shared.not_empty.wait(q).unwrap();
    }
}

/// One shopper session opened over this connection.
struct ConnSession {
    shopper: u64,
    session: Session,
    /// The session's resumption token (also minted for v1 sessions, which
    /// simply never see it on the wire).
    token: u64,
    /// Opened (or resumed) under a v2 frame: replies are remembered for
    /// retry dedup, and the session parks on disconnect when a lease is
    /// configured.
    replayable: bool,
    replay: ReplayCache,
}

/// Serve one connection to completion, then hand its surviving v2 sessions
/// to the parking registry (v1 sessions drop with the connection, as
/// before resumption existed).
fn serve_connection<S: Transport>(shared: &Shared, mut stream: S, conn_id: u64) {
    let mut sessions: HashMap<u64, ConnSession> = HashMap::with_capacity(4);
    drive_connection(shared, &mut stream, conn_id, &mut sessions);
    park_connection(shared, conn_id, sessions);
}

/// The connection's read/handle/write loop: read, drain every complete
/// frame, write all responses back in one batch, repeat. The receive/send
/// buffers and the scratch block are reused for the connection's whole
/// lifetime. A frame left incomplete longer than `io_deadline` (or a write
/// that blocks that long) closes the connection as a slow-loris timeout.
fn drive_connection<S: Transport>(
    shared: &Shared,
    stream: &mut S,
    conn_id: u64,
    sessions: &mut HashMap<u64, ConnSession>,
) {
    drop(stream.set_read_timeout(Some(Duration::from_millis(50))));
    drop(stream.set_write_timeout(Some(shared.cfg.io_deadline)));
    let mut recv: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut send: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = [0u8; 16 * 1024];
    // When the receive buffer holds a frame prefix, this is the moment the
    // slow-loris clock started; `None` while the buffer sits empty between
    // frames, so idle connections are never timed out.
    let mut partial_since: Option<Instant> = None;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => recv.extend_from_slice(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if expired(partial_since, shared.cfg.io_deadline) {
                    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let mut consumed = 0;
        loop {
            match wire::peek_header(&recv[consumed..], shared.cfg.max_payload) {
                Ok(None) => break,
                Ok(Some(h)) => {
                    let frame_len = HEADER_LEN + h.payload_len as usize;
                    if recv.len() - consumed < frame_len {
                        break;
                    }
                    let payload = &recv[consumed + HEADER_LEN..consumed + frame_len];
                    handle_frame(shared, &h, payload, conn_id, sessions, &mut send);
                    consumed += frame_len;
                }
                Err(e) => {
                    // Framing is lost (bad magic/version/length): answer with
                    // one protocol fault and close — there is no way to
                    // resynchronize the stream.
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    wire::encode_reply(&mut send, 0, 0, &Reply::Fault(Fault::protocol(&e)));
                    drop(stream.write_all(&send));
                    return;
                }
            }
        }
        recv.drain(..consumed);
        if recv.is_empty() {
            partial_since = None;
        } else if consumed > 0 || partial_since.is_none() {
            // A fresh partial frame (or forward progress past complete
            // frames) restarts the clock.
            partial_since = Some(Instant::now());
        } else if expired(partial_since, shared.cfg.io_deadline) {
            // Bytes are trickling in but the frame still is not complete:
            // the drip-feed variant of slow-loris.
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !send.is_empty() {
            if let Err(e) = stream.write_all(&send) {
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                {
                    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            send.clear();
        }
    }
}

fn expired(since: Option<Instant>, deadline: Duration) -> bool {
    since.is_some_and(|t0| t0.elapsed() >= deadline)
}

/// Park the connection's surviving resumable sessions in the registry;
/// everything else drops here (releasing capacity slots immediately).
fn park_connection(shared: &Shared, conn_id: u64, sessions: HashMap<u64, ConnSession>) {
    if sessions.is_empty() {
        return;
    }
    let lease_on = shared.mgr.lease().is_some();
    let now = Instant::now();
    let mut reg = shared.registry.lock().unwrap();
    for (_, cs) in sessions {
        if !(lease_on && cs.replayable) {
            continue;
        }
        if let Some(TokenEntry::Attached { conn }) = reg.tokens.get(&cs.token) {
            if *conn == conn_id {
                reg.tokens.insert(
                    cs.token,
                    TokenEntry::Parked(Box::new(Parked {
                        shopper: cs.shopper,
                        session: cs.session,
                        replay: cs.replay,
                        since: now,
                    })),
                );
            }
        }
    }
}

/// What the post-encode bookkeeping must remember about a dispatched
/// request (v2 exactly-once records).
enum Recorded {
    Nothing,
    Open {
        shopper: u64,
        session: u64,
        token: u64,
    },
    Op {
        session: u64,
    },
    Close {
        session: u64,
        token: u64,
    },
}

enum OpenDedup {
    Hit,
    Busy,
    Miss,
}

/// Answer a retried v2 `OpenSession` from the registry: re-attach the
/// session if the original connection's death parked it, then replay the
/// recorded open frame byte-for-byte.
fn try_dedup_open(
    shared: &Shared,
    conn_id: u64,
    shopper: u64,
    request_id: u64,
    digest: u64,
    sessions: &mut HashMap<u64, ConnSession>,
    send: &mut Vec<u8>,
) -> OpenDedup {
    sweep_leases(shared);
    let mut reg = shared.registry.lock().unwrap();
    let key = (shopper, request_id);
    let Some(rec) = reg.opens.get(&key) else {
        return OpenDedup::Miss;
    };
    if rec.digest != digest {
        // Same id, different bytes: a new client reusing a low id, not a
        // retry. Open fresh; the record is overwritten on success.
        return OpenDedup::Miss;
    }
    let (sid, token) = (rec.session, rec.token);
    let attached = match reg.tokens.get(&token) {
        Some(TokenEntry::Attached { conn }) if *conn == conn_id => true,
        Some(TokenEntry::Attached { .. }) => return OpenDedup::Busy,
        Some(TokenEntry::Parked(_)) => {
            let Some(TokenEntry::Parked(parked)) = reg.tokens.remove(&token) else {
                return OpenDedup::Miss;
            };
            reg.tokens
                .insert(token, TokenEntry::Attached { conn: conn_id });
            let Parked {
                shopper: owner,
                session,
                replay,
                ..
            } = *parked;
            sessions.insert(
                sid,
                ConnSession {
                    shopper: owner,
                    session,
                    token,
                    replayable: true,
                    replay,
                },
            );
            true
        }
        // The session was closed or its lease reclaimed it: replaying the
        // open would resurrect a dead id, so fall through to a fresh open.
        None => false,
    };
    if !attached {
        return OpenDedup::Miss;
    }
    if let Some(rec) = reg.opens.get(&key) {
        send.extend_from_slice(&rec.frame);
        shared.counters.replay_hits.fetch_add(1, Ordering::Relaxed);
        return OpenDedup::Hit;
    }
    OpenDedup::Miss
}

/// Decode and execute one request frame, appending the response to `send`.
fn handle_frame(
    shared: &Shared,
    h: &wire::FrameHeader,
    payload: &[u8],
    conn_id: u64,
    sessions: &mut HashMap<u64, ConnSession>,
    send: &mut Vec<u8>,
) {
    let (opcode, request_id) = (h.opcode, h.request_id);
    let req = match wire::decode_request(opcode, payload) {
        Ok(req) => req,
        Err(e) => {
            // The frame boundary is intact (header was valid), so a payload
            // decode error faults this request and keeps the connection.
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            wire::encode_reply_v(
                send,
                h.version,
                request_id,
                opcode,
                &Reply::Fault(Fault::protocol(&e)),
            );
            return;
        }
    };
    shared
        .counters
        .requests_served
        .fetch_add(1, Ordering::Relaxed);

    // What a retried frame must reproduce to be answered from a replay
    // cache: the id alone is not enough once resumption lets a fresh
    // client (whose ids restart at 1) inherit a session.
    let digest = request_digest(opcode, payload);

    // Exactly-once interception, v2 frames only: a retried request id is
    // answered with the recorded reply bytes — no re-execution, no second
    // ledger charge, bit-identical frames.
    if h.version >= 2 {
        match &req {
            Request::OpenSession { shopper, .. } => {
                match try_dedup_open(
                    shared, conn_id, *shopper, request_id, digest, sessions, send,
                ) {
                    OpenDedup::Hit => return,
                    OpenDedup::Busy => {
                        wire::encode_reply_v(
                            send,
                            h.version,
                            request_id,
                            opcode,
                            &Reply::Fault(Fault::session_busy()),
                        );
                        return;
                    }
                    OpenDedup::Miss => {}
                }
            }
            Request::Quote { session, .. }
            | Request::QuoteBatch { session, .. }
            | Request::BuySample { session, .. }
            | Request::Execute { session, .. }
            | Request::Repin { session }
            | Request::CloseSession { session } => {
                if let Some(cs) = sessions.get(session) {
                    if cs.replayable {
                        if let Some(frame) = cs.replay.get(request_id, digest) {
                            shared.counters.replay_hits.fetch_add(1, Ordering::Relaxed);
                            send.extend_from_slice(frame);
                            return;
                        }
                    }
                } else if matches!(req, Request::CloseSession { .. }) {
                    let reg = shared.registry.lock().unwrap();
                    if let Some(rec) = reg.closes.get(session) {
                        if rec.request_id == request_id && rec.digest == digest {
                            shared.counters.replay_hits.fetch_add(1, Ordering::Relaxed);
                            send.extend_from_slice(&rec.frame);
                            return;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Admission: every request except Stats and the control frames
    // (Hello/Resume) costs one token from the bucket of the shopper it
    // acts for.
    let shopper = match &req {
        Request::OpenSession { shopper, .. } => Some(*shopper),
        Request::Stats | Request::Hello { .. } | Request::Resume { .. } => None,
        Request::Quote { session, .. }
        | Request::QuoteBatch { session, .. }
        | Request::BuySample { session, .. }
        | Request::Execute { session, .. }
        | Request::Repin { session }
        | Request::CloseSession { session } => match sessions.get(session) {
            Some(cs) => Some(cs.shopper),
            None => {
                wire::encode_reply_v(
                    send,
                    h.version,
                    request_id,
                    opcode,
                    &Reply::Fault(Fault::unknown_session(*session)),
                );
                return;
            }
        },
    };
    if let Some(shopper) = shopper {
        if !shared.admit(shopper) {
            shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            wire::encode_reply_v(
                send,
                h.version,
                request_id,
                opcode,
                &Reply::Fault(Fault::rejected("shopper rate limit exceeded; retry later")),
            );
            return;
        }
    }

    let mut record = Recorded::Nothing;
    let reply = match req {
        Request::OpenSession {
            shopper,
            seed,
            budget,
        } => {
            // Reclaim lapsed leases before the capacity check, so parked
            // corpses never crowd out live shoppers.
            sweep_leases(shared);
            match shared.mgr.open(SessionConfig { budget, seed }) {
                Ok(session) => {
                    let id = session.id().0;
                    let version = session.pinned_version();
                    let token = shared.mgr.session_token(session.id()).0;
                    let replayable = h.version >= 2;
                    if replayable && shared.mgr.lease().is_some() {
                        record = Recorded::Open {
                            shopper,
                            session: id,
                            token,
                        };
                    }
                    sessions.insert(
                        id,
                        ConnSession {
                            shopper,
                            session,
                            token,
                            replayable,
                            replay: ReplayCache::default(),
                        },
                    );
                    Reply::Ok(Response::OpenSession {
                        session: id,
                        version,
                        token,
                    })
                }
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::Quote {
            session,
            dataset,
            attrs,
        } => {
            let cs = sessions.get(&session).expect("checked above");
            record = Recorded::Op { session };
            match cs.session.quote(crate::catalog::DatasetId(dataset), &attrs) {
                Ok(price) => Reply::Ok(Response::Quote { price }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::QuoteBatch { session, items } => {
            let cs = sessions.get(&session).expect("checked above");
            record = Recorded::Op { session };
            match cs.session.quote_batch(&items) {
                Ok(prices) => Reply::Ok(Response::QuoteBatch { prices }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::BuySample {
            session,
            dataset,
            rate,
            key,
        } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            record = Recorded::Op { session };
            match cs
                .session
                .buy_sample(crate::catalog::DatasetId(dataset), &key, rate)
            {
                Ok((table, price)) => Reply::Ok(Response::BuySample {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::Execute {
            session,
            dataset,
            attrs,
        } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            record = Recorded::Op { session };
            match cs
                .session
                .execute_by_id(crate::catalog::DatasetId(dataset), &attrs)
            {
                Ok((table, price)) => Reply::Ok(Response::Execute {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::Repin { session } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            record = Recorded::Op { session };
            Reply::Ok(Response::Repin {
                version: cs.session.repin(),
            })
        }
        Request::Stats => Reply::Ok(Response::Stats(shared.stats())),
        Request::CloseSession { session } => {
            let cs = sessions.remove(&session).expect("checked above");
            if cs.replayable {
                record = Recorded::Close {
                    session,
                    token: cs.token,
                };
            }
            let report = shared.mgr.close(cs.session);
            Reply::Ok(Response::CloseSession {
                seed: report.seed,
                version: report.catalog_version,
                purchases: report.purchases.len() as u32,
                spent: report.spent,
                remaining: report.remaining,
            })
        }
        Request::Hello { version, features } => {
            if version < wire::MIN_PROTOCOL_VERSION {
                Reply::Fault(Fault::unsupported_version(version))
            } else {
                Reply::Ok(Response::Hello {
                    version: version.min(wire::PROTOCOL_VERSION),
                    features: features & wire::SERVER_FEATURES,
                })
            }
        }
        Request::Resume { token } => {
            sweep_leases(shared);
            let mut reg = shared.registry.lock().unwrap();
            let hit = match reg.tokens.get(&token) {
                None => None,
                Some(TokenEntry::Attached { conn }) if *conn == conn_id => {
                    // Idempotent: the session already lives here (e.g. a
                    // retried resume whose reply was lost).
                    Some(None)
                }
                Some(TokenEntry::Attached { .. }) => Some(Some(Fault::session_busy())),
                Some(TokenEntry::Parked(_)) => match reg.tokens.remove(&token) {
                    Some(TokenEntry::Parked(parked)) => {
                        reg.tokens
                            .insert(token, TokenEntry::Attached { conn: conn_id });
                        let Parked {
                            shopper: owner,
                            session,
                            replay,
                            ..
                        } = *parked;
                        shared.counters.resumes.fetch_add(1, Ordering::Relaxed);
                        sessions.insert(
                            session.id().0,
                            ConnSession {
                                shopper: owner,
                                session,
                                token,
                                replayable: true,
                                replay,
                            },
                        );
                        Some(None)
                    }
                    _ => None,
                },
            };
            drop(reg);
            match hit {
                None => Reply::Fault(Fault::unknown_token()),
                Some(Some(busy)) => Reply::Fault(busy),
                Some(None) => match sessions.values().find(|cs| cs.token == token) {
                    Some(cs) => Reply::Ok(Response::Resume {
                        session: cs.session.id().0,
                        version: cs.session.pinned_version(),
                        purchases: cs.session.ledger().len() as u32,
                    }),
                    None => Reply::Fault(Fault::unknown_token()),
                },
            }
        }
    };
    let frame_start = send.len();
    wire::encode_reply_v(send, h.version, request_id, opcode, &reply);
    if h.version >= 2 {
        match record {
            Recorded::Nothing => {}
            Recorded::Open {
                shopper,
                session,
                token,
            } => {
                if reply.ok().is_some() {
                    let mut reg = shared.registry.lock().unwrap();
                    reg.tokens
                        .insert(token, TokenEntry::Attached { conn: conn_id });
                    reg.record_open(
                        (shopper, request_id),
                        session,
                        token,
                        digest,
                        &send[frame_start..],
                    );
                }
            }
            Recorded::Op { session } => {
                if let Some(cs) = sessions.get_mut(&session) {
                    if cs.replayable {
                        cs.replay.put(request_id, digest, &send[frame_start..]);
                    }
                }
            }
            Recorded::Close { session, token } => {
                let mut reg = shared.registry.lock().unwrap();
                reg.tokens.remove(&token);
                reg.record_close(session, request_id, digest, &send[frame_start..]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WireClient;
    use crate::pricing::EntropyPricing;
    use crate::session::SessionManagerConfig;
    use crate::Marketplace;
    use dance_relation::{AttrSet, Table, Value, ValueType};

    #[test]
    fn replay_cache_discriminates_reused_ids_by_digest() {
        let mut cache = ReplayCache::default();
        cache.put(2, 0xAAAA, b"first");
        assert_eq!(cache.get(2, 0xAAAA), Some(&b"first"[..]));
        assert_eq!(cache.get(2, 0xBBBB), None, "same id, different bytes");
        cache.put(2, 0xBBBB, b"second");
        assert_eq!(cache.get(2, 0xBBBB), Some(&b"second"[..]));
        assert_eq!(cache.get(2, 0xAAAA), Some(&b"first"[..]));
        assert_ne!(
            request_digest(5, b"abc"),
            request_digest(6, b"abc"),
            "opcode seeds the digest"
        );
    }

    fn service(max_sessions: usize) -> Arc<SessionManager> {
        service_with(SessionManagerConfig {
            max_sessions,
            ..SessionManagerConfig::default()
        })
    }

    fn service_with(cfg: SessionManagerConfig) -> Arc<SessionManager> {
        let t = Table::from_rows(
            "sv_a",
            &[("sv_k", ValueType::Int), ("sv_x", ValueType::Str)],
            (0..60)
                .map(|i| vec![Value::Int(i % 6), Value::str(format!("x{}", i % 4))])
                .collect(),
        )
        .unwrap();
        let market = Arc::new(Marketplace::new(vec![t], EntropyPricing::default()));
        Arc::new(SessionManager::new(market, cfg))
    }

    fn key(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    #[test]
    fn end_to_end_session_over_the_wire() {
        let mgr = service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();

        let open = client
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession {
            session, version, ..
        }) = open
        else {
            panic!("expected open, got {open:?}");
        };
        assert_eq!(version, 0);

        let quote = client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        let Reply::Ok(Response::Quote { price }) = quote else {
            panic!("expected quote, got {quote:?}");
        };
        assert!(price > 0.0);

        let bought = client
            .call(&Request::BuySample {
                session,
                dataset: 0,
                rate: 0.5,
                key: key(&["sv_k"]),
            })
            .unwrap();
        let Reply::Ok(Response::BuySample { price, rows, .. }) = bought else {
            panic!("expected sample, got {bought:?}");
        };
        assert!(price > 0.0 && rows > 0);

        let closed = client.call(&Request::CloseSession { session }).unwrap();
        let Reply::Ok(Response::CloseSession {
            purchases, spent, ..
        }) = closed
        else {
            panic!("expected close, got {closed:?}");
        };
        assert_eq!(purchases, 1);
        assert!(spent > 0.0);
        // The wire purchase landed in real marketplace revenue.
        assert_eq!(mgr.market().revenue().to_bits(), spent.to_bits());

        let stats = server.shutdown();
        assert_eq!(stats.requests_served, 4);
        assert_eq!(stats.protocol_errors, 0);
        assert_eq!((stats.sessions_opened, stats.sessions_closed), (1, 1));
    }

    #[test]
    fn pipelined_requests_come_back_in_order_with_matching_ids() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: f64::INFINITY,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open");
        };
        // 32 quotes in flight at once.
        let ids: Vec<u64> = (0..32)
            .map(|_| {
                client.queue(&Request::Quote {
                    session,
                    dataset: 0,
                    attrs: key(&["sv_x"]),
                })
            })
            .collect();
        client.flush().unwrap();
        let mut last_price = None;
        for want in ids {
            let (got, reply) = client.recv_reply().unwrap();
            assert_eq!(got, want, "responses arrive in request order");
            let Reply::Ok(Response::Quote { price }) = reply else {
                panic!("expected quote, got {reply:?}");
            };
            if let Some(prev) = last_price.replace(price.to_bits()) {
                assert_eq!(prev, price.to_bits());
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests_served, 33);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn unknown_session_and_capacity_fault_cleanly() {
        let mgr = service(1);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();

        let reply = client
            .call(&Request::Quote {
                session: 999,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::UnknownSession)
        );

        let open = |c: &mut WireClient| {
            c.call(&Request::OpenSession {
                shopper: 1,
                seed: 1,
                budget: 1.0,
            })
            .unwrap()
        };
        let first = open(&mut client);
        assert!(first.ok().is_some());
        let second = open(&mut client);
        assert_eq!(
            second.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::AtCapacity)
        );
        server.shutdown();
    }

    #[test]
    fn payload_decode_error_faults_but_keeps_the_connection() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        // A Repin frame whose payload is one byte short of a session id.
        client.send_raw_frame(crate::wire::Opcode::Repin as u16, 5, &[0u8; 7]);
        client.flush().unwrap();
        let (id, reply) = client.recv_reply().unwrap();
        assert_eq!(id, 5);
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Protocol)
        );
        // The connection still works.
        let stats = client.call(&Request::Stats).unwrap();
        let Reply::Ok(Response::Stats(s)) = stats else {
            panic!("expected stats");
        };
        assert_eq!(s.protocol_errors, 1);
        server.shutdown();
    }

    #[test]
    fn garbage_magic_gets_a_protocol_fault_then_close() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        client.send_raw_bytes(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n");
        client.flush().unwrap();
        let (id, reply) = client.recv_reply().unwrap();
        assert_eq!(id, 0, "connection-level fault carries request id 0");
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Protocol)
        );
        // The server closed the connection afterwards.
        assert!(client.recv_reply().is_err());
        let stats = server.shutdown();
        assert_eq!(stats.protocol_errors, 1);
    }

    #[test]
    fn rate_limited_shoppers_get_rejected_frames_not_hangs() {
        let mgr = service(64);
        let server = Server::start(
            mgr,
            ServerConfig {
                rate_limit: Some(RateLimit {
                    per_sec: 0.0001,
                    burst: 2.0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 42,
                seed: 1,
                budget: f64::INFINITY,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open");
        };
        // Token 2 of 2 spent on the first quote; the next is rejected.
        assert!(client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap()
            .ok()
            .is_some());
        let rejected = client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        assert_eq!(
            rejected.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Rejected)
        );
        // Stats is exempt from rate limiting and reports the rejection.
        let stats = client.call(&Request::Stats).unwrap();
        let Reply::Ok(Response::Stats(s)) = stats else {
            panic!("expected stats");
        };
        assert_eq!(s.rate_limited, 1);
        server.shutdown();
    }

    #[test]
    fn full_backlog_rejects_connections_with_a_frame() {
        let mgr = service(8);
        // No workers able to drain: occupy the single worker with an idle
        // connection, then overflow the 1-slot backlog.
        let server = Server::start(
            mgr,
            ServerConfig {
                workers: 1,
                backlog: 1,
                on_full: BacklogPolicy::Reject,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let _occupant = WireClient::connect(server.addr()).unwrap();
        // Give the worker a beat to claim the occupant off the queue, then
        // fill the queue slot and overflow it.
        std::thread::sleep(Duration::from_millis(100));
        let _queued = WireClient::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut shed = WireClient::connect(server.addr()).unwrap();
        let (id, reply) = client_first_reply(&mut shed);
        assert_eq!(id, 0);
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Rejected)
        );
        let stats = server.shutdown();
        assert!(stats.connections_rejected >= 1);
    }

    fn client_first_reply(c: &mut WireClient) -> (u64, Reply) {
        c.recv_reply().unwrap()
    }

    // --- resilience-layer tests (protocol v2) ---

    /// A manager with resumption on: a 30s lease (long enough to never
    /// lapse mid-test) and a pinned token secret.
    fn resilient_service(max_sessions: usize) -> Arc<SessionManager> {
        service_with(SessionManagerConfig {
            max_sessions,
            lease_secs: Some(30.0),
            token_secret: Some((0xA5A5_0001, 0x5C5C_0002)),
        })
    }

    #[test]
    fn hello_negotiates_version_and_features() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let (version, features) = client.hello().unwrap();
        assert_eq!(version, wire::PROTOCOL_VERSION);
        assert_eq!(features, wire::SERVER_FEATURES);

        // A futuristic client is answered at the server's newest version;
        // unknown feature bits are masked off.
        let reply = client
            .call(&Request::Hello {
                version: 9,
                features: u32::MAX,
            })
            .unwrap();
        let Reply::Ok(Response::Hello { version, features }) = reply else {
            panic!("expected hello, got {reply:?}");
        };
        assert_eq!(version, wire::PROTOCOL_VERSION);
        assert_eq!(features, wire::SERVER_FEATURES);

        // A prehistoric version gets a Protocol fault.
        let reply = client
            .call(&Request::Hello {
                version: 0,
                features: 0,
            })
            .unwrap();
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Protocol)
        );
        server.shutdown();
    }

    #[test]
    fn v2_open_carries_a_token_and_v1_does_not() {
        let mgr = resilient_service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();

        let mut v1 = WireClient::connect(server.addr()).unwrap();
        let open = v1
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { token, .. }) = open else {
            panic!("expected open");
        };
        assert_eq!(token, 0, "v1 frames never carry the token");

        let mut v2 = WireClient::builder(server.addr()).connect().unwrap();
        let open = v2
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, token, .. }) = open else {
            panic!("expected open");
        };
        assert_eq!(
            token,
            mgr.session_token(crate::session::SessionId(session)).0,
            "the wire token is the manager's token for this session"
        );
        assert_ne!(token, 0);
        server.shutdown();
    }

    #[test]
    fn killed_connection_resumes_at_pinned_snapshot_with_ledger_intact() {
        let mgr = resilient_service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();

        let mut c1 = WireClient::builder(server.addr()).connect().unwrap();
        let open = c1
            .call(&Request::OpenSession {
                shopper: 3,
                seed: 11,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, token, .. }) = open else {
            panic!("expected open, got {open:?}");
        };
        let bought = c1
            .call(&Request::BuySample {
                session,
                dataset: 0,
                rate: 0.5,
                key: key(&["sv_k"]),
            })
            .unwrap();
        let Reply::Ok(Response::BuySample { price: p1, .. }) = bought else {
            panic!("expected sample, got {bought:?}");
        };
        // Kill the connection without closing the session.
        drop(c1);

        // A fresh connection re-attaches with the token; the session is at
        // its pinned snapshot with one purchase in the ledger.
        let mut c2 = WireClient::builder(server.addr()).connect().unwrap();
        let resumed = resume_with_retry(&mut c2, token);
        let Reply::Ok(Response::Resume {
            session: rs,
            version,
            purchases,
        }) = resumed
        else {
            panic!("expected resume, got {resumed:?}");
        };
        assert_eq!(rs, session);
        assert_eq!(version, 0);
        assert_eq!(purchases, 1);

        // The second purchase continues the seeded purchase sequence. Its
        // request bytes differ from c1's purchase, so even when c2's fresh
        // id sequence collides with an id c1 already used, the digest check
        // executes it instead of replaying c1's cached reply.
        let bought = c2
            .call(&Request::BuySample {
                session,
                dataset: 0,
                rate: 0.25,
                key: key(&["sv_k", "sv_x"]),
            })
            .unwrap();
        let Reply::Ok(Response::BuySample { price: p2, .. }) = bought else {
            panic!("expected sample, got {bought:?}");
        };
        let closed = c2.call(&Request::CloseSession { session }).unwrap();
        let Reply::Ok(Response::CloseSession {
            purchases, spent, ..
        }) = closed
        else {
            panic!("expected close, got {closed:?}");
        };
        assert_eq!(purchases, 2);
        assert_eq!(spent.to_bits(), (p1 + p2).to_bits());
        assert_eq!(mgr.market().revenue().to_bits(), spent.to_bits());

        let stats = server.shutdown();
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.sessions_open, 0);
        // A bogus token would have been rejected, not crashed: covered by
        // the fault being UnknownSession below.
    }

    /// Resume, retrying while the dead connection's worker races us to the
    /// park (the server answers `session_busy` until it parks).
    fn resume_with_retry(c: &mut WireClient, token: u64) -> Reply {
        for _ in 0..50 {
            let reply = c.call(&Request::Resume { token }).unwrap();
            match reply.fault() {
                Some(f) if f.code == crate::wire::FaultCode::Rejected => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => return reply,
            }
        }
        panic!("session never parked");
    }

    #[test]
    fn bogus_tokens_cannot_resume() {
        let mgr = resilient_service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::builder(server.addr()).connect().unwrap();
        let reply = client
            .call(&Request::Resume { token: 0xBAAD_F00D })
            .unwrap();
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::UnknownSession)
        );
        server.shutdown();
    }

    #[test]
    fn retried_purchase_replays_identical_bytes_without_double_charge() {
        let mgr = resilient_service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
        let mut client = WireClient::builder(server.addr())
            .recording()
            .connect()
            .unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 5,
                seed: 13,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open");
        };
        let buy = Request::BuySample {
            session,
            dataset: 0,
            rate: 0.4,
            key: key(&["sv_k"]),
        };
        let first = client.call(&buy).unwrap();
        let Reply::Ok(Response::BuySample { price, .. }) = first else {
            panic!("expected sample, got {first:?}");
        };
        let after_first = client.transcript().len();

        // Re-send the purchase under its original request id, twice: the
        // reply frames are byte-identical and the ledger takes one charge.
        let retry_id = client.last_id();
        for _ in 0..2 {
            client.resend(retry_id, &buy).unwrap();
            let (id, reply) = client.recv_reply().unwrap();
            assert_eq!(id, retry_id);
            assert_eq!(reply, first);
        }
        let t = client.transcript();
        let original = &t[after_first - (t.len() - after_first) / 2..after_first];
        assert_eq!(&t[after_first..after_first + original.len()], original);
        assert_eq!(
            &t[after_first + original.len()..],
            original,
            "replayed frames are byte-identical"
        );

        let closed = client.call(&Request::CloseSession { session }).unwrap();
        let Reply::Ok(Response::CloseSession {
            purchases, spent, ..
        }) = closed
        else {
            panic!("expected close");
        };
        assert_eq!(purchases, 1, "no double charge");
        assert_eq!(spent.to_bits(), price.to_bits());
        assert_eq!(mgr.market().revenue().to_bits(), price.to_bits());

        // A retried close replays from the tombstone: still one close.
        client
            .resend(client.last_id(), &Request::CloseSession { session })
            .unwrap();
        let (_, replayed) = client.recv_reply().unwrap();
        assert_eq!(replayed, closed);

        let stats = server.shutdown();
        assert_eq!(stats.replay_hits, 3);
        assert_eq!((stats.sessions_opened, stats.sessions_closed), (1, 1));
    }

    #[test]
    fn retried_open_returns_the_same_session_not_a_second_one() {
        let mgr = resilient_service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
        let mut client = WireClient::builder(server.addr()).connect().unwrap();
        let open = Request::OpenSession {
            shopper: 9,
            seed: 21,
            budget: 50.0,
        };
        let first = client.call(&open).unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = first else {
            panic!("expected open");
        };
        let open_id = client.last_id();
        client.resend(open_id, &open).unwrap();
        let (_, retried) = client.recv_reply().unwrap();
        assert_eq!(retried, first, "the dedup'd open is the same reply");
        assert_eq!(mgr.stats().opened, 1, "one session, not two");
        client.call(&Request::CloseSession { session }).unwrap();
        server.shutdown();
    }

    #[test]
    fn expired_lease_reclaims_the_capacity_slot() {
        let mgr = service_with(SessionManagerConfig {
            max_sessions: 1,
            lease_secs: Some(0.0),
            token_secret: Some((1, 2)),
        });
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
        let mut c1 = WireClient::builder(server.addr()).connect().unwrap();
        let open = c1
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 1,
                budget: 1.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { token, .. }) = open else {
            panic!("expected open, got {open:?}");
        };
        drop(c1); // parks the session (lease 0: reclaimable immediately)

        // Capacity is 1: a new open succeeds only once the sweep reclaims
        // the parked slot; the sweep runs inside the open path itself.
        let mut c2 = WireClient::builder(server.addr()).connect().unwrap();
        let opened = (0..50)
            .map(|_| {
                std::thread::sleep(Duration::from_millis(20));
                c2.call(&Request::OpenSession {
                    shopper: 2,
                    seed: 2,
                    budget: 1.0,
                })
                .unwrap()
            })
            .find(|r| r.ok().is_some());
        assert!(opened.is_some(), "reclaim freed the slot");

        // The reclaimed session's token no longer resumes.
        let reply = c2.call(&Request::Resume { token }).unwrap();
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::UnknownSession)
        );
        let stats = server.shutdown();
        assert!(stats.leases_reclaimed >= 1);
        assert_eq!(mgr.stats().reclaimed as u64, stats.leases_reclaimed);
    }

    #[test]
    fn slow_loris_mid_frame_connection_is_timed_out() {
        let mgr = service(8);
        let server = Server::start(
            mgr,
            ServerConfig {
                io_deadline: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Drip half a header and stall.
        let mut loris = WireClient::connect(server.addr()).unwrap();
        loris.send_raw_bytes(&wire::MAGIC.to_le_bytes());
        loris.send_raw_bytes(&[1, 0]);
        loris.flush().unwrap();
        // An idle (zero-byte) connection on the same server is NOT timed
        // out: only mid-frame stalls are.
        let mut idle = WireClient::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(500));
        assert!(
            loris.recv_reply().is_err(),
            "the mid-frame staller was closed"
        );
        let stats = idle.call(&Request::Stats).unwrap();
        let Reply::Ok(Response::Stats(s)) = stats else {
            panic!("expected stats (idle connection survived)");
        };
        assert_eq!(s.timeouts, 1);
        server.shutdown();
    }

    #[test]
    fn server_side_chaos_still_serves_v1_clients_eventually() {
        // Chaos on the server side with only benign faults (fragmented
        // writes + delays): a plain client still completes a session,
        // which pins that the server's frame reassembly and the chaos
        // transport compose.
        let mgr = service(8);
        let server = Server::start(
            mgr,
            ServerConfig {
                chaos: Some(ChaosConfig {
                    seed: 0xC4A05,
                    reset_rate: 0.0,
                    truncate_rate: 0.0,
                    short_write_rate: 0.5,
                    delay_rate: 0.1,
                    max_delay_ms: 2,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open, got {open:?}");
        };
        let bought = client
            .call(&Request::BuySample {
                session,
                dataset: 0,
                rate: 0.5,
                key: key(&["sv_k"]),
            })
            .unwrap();
        assert!(bought.ok().is_some());
        let closed = client.call(&Request::CloseSession { session }).unwrap();
        assert!(closed.ok().is_some());
        server.shutdown();
    }
}
