//! `market::server` — a multi-worker TCP server exposing the acquisition
//! session service over the [`crate::wire`] protocol.
//!
//! Architecture (std-only, like `dance-executor` — no async runtime):
//!
//! * one **acceptor** thread takes connections off a `TcpListener` and
//!   pushes them onto a bounded backlog queue — when the queue is full the
//!   configured policy either blocks the acceptor (queue) or answers the
//!   connection with a single `Rejected` fault frame and drops it (reject);
//! * a fixed pool of **worker** threads pops connections and serves each to
//!   completion. One connection is owned by one worker at a time, so the
//!   sessions opened on it live in plain worker-local state and the session
//!   layer stays lock-free.
//!
//! **Pipelining:** a client may keep many requests in flight on one
//! connection. The worker drains every complete frame from the receive
//! buffer, handles them in arrival order, and writes all responses back in
//! one batch — responses carry the client's request id and are written in
//! completion order (which, on a single connection, equals request order, so
//! transcripts stay deterministic).
//!
//! **Hot path allocation:** each connection owns a receive buffer, a send
//! buffer and a fixed stack scratch block, all reused across requests — a
//! CI grep-guard keeps per-request allocation and string formatting out of
//! this file (fault-message construction lives in [`crate::wire`]).
//!
//! **Admission control** beyond the session manager's hard `AtCapacity`:
//! per-shopper token buckets (configurable rate + burst; `Stats` requests
//! are exempt) answer over-limit requests with `Rejected` faults rather
//! than hangs, and the bounded accept backlog sheds load at the edge. All
//! of it is surfaced in [`StatsSnapshot`] via [`Server::stats`].

use crate::session::{SessionConfig, SessionManager};
use crate::wire::{
    self, Fault, Reply, Request, Response, StatsSnapshot, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-shopper rate limit: a token bucket refilled at `per_sec`, holding at
/// most `burst` tokens; every request except `Stats` costs one token.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Sustained requests/second per shopper.
    pub per_sec: f64,
    /// Burst capacity (initial fill and cap).
    pub burst: f64,
}

/// What the acceptor does when the backlog queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacklogPolicy {
    /// Block the acceptor until a worker frees a slot.
    Queue,
    /// Answer the connection with one `Rejected` fault frame and drop it.
    Reject,
}

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded accept-backlog capacity (connections waiting for a worker).
    pub backlog: usize,
    /// Queue-or-reject policy when the backlog is full.
    pub on_full: BacklogPolicy,
    /// Optional per-shopper token-bucket rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Frame payload cap enforced at the header.
    pub max_payload: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 64,
            on_full: BacklogPolicy::Reject,
            rate_limit: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_served: AtomicU64,
    rate_limited: AtomicU64,
    protocol_errors: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, now: Instant, limit: &RateLimit) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.per_sec).min(limit.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// State shared by the acceptor, the workers and the [`Server`] handle.
#[derive(Debug)]
struct Shared {
    mgr: Arc<SessionManager>,
    cfg: ServerConfig,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: Counters,
    buckets: Mutex<HashMap<u64, TokenBucket>>,
}

impl Shared {
    fn stats(&self) -> StatsSnapshot {
        let m = self.mgr.stats();
        StatsSnapshot {
            sessions_open: m.open as u64,
            sessions_opened: m.opened as u64,
            sessions_closed: m.closed as u64,
            sessions_rejected: m.rejected as u64,
            sessions_peak_open: m.peak_open as u64,
            connections_accepted: self.counters.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.counters.connections_rejected.load(Ordering::Relaxed),
            requests_served: self.counters.requests_served.load(Ordering::Relaxed),
            rate_limited: self.counters.rate_limited.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Charge one token to `shopper`'s bucket; `true` means admitted.
    fn admit(&self, shopper: u64) -> bool {
        let Some(limit) = self.cfg.rate_limit else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(shopper).or_insert(TokenBucket {
            tokens: limit.burst,
            last: now,
        });
        bucket.try_take(now, &limit)
    }
}

/// A running wire server over one [`SessionManager`]. Dropping the handle
/// without [`Server::shutdown`] leaves the threads running detached — call
/// `shutdown` for a clean stop.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind a loopback listener on an ephemeral port and start the acceptor
    /// plus `cfg.workers` worker threads.
    pub fn start(mgr: Arc<SessionManager>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            mgr,
            cfg,
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::with_capacity(cfg.backlog)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            counters: Counters::default(),
            buckets: Mutex::new(HashMap::with_capacity(64)),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Combined service counters: session-manager stats plus the server's
    /// connection/request/admission counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// Stop accepting, wake every thread, join them all, and return the
    /// final counters. In-flight connections notice the stop flag at their
    /// next read-timeout tick (≤ ~50ms) and close.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a throwaway connect.
        drop(TcpStream::connect(self.addr));
        // Take the queue lock once so no thread can miss the wakeup between
        // its stop-check and its condvar wait.
        drop(self.shared.queue.lock().unwrap());
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(a) = self.acceptor.take() {
            drop(a.join());
        }
        for w in self.workers.drain(..) {
            drop(w.join());
        }
        self.shared.stats()
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let conn = listener.accept();
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let mut q = shared.queue.lock().unwrap();
        if q.len() >= shared.cfg.backlog {
            match shared.cfg.on_full {
                BacklogPolicy::Reject => {
                    drop(q);
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream);
                    continue;
                }
                BacklogPolicy::Queue => {
                    while q.len() >= shared.cfg.backlog {
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        q = shared.not_full.wait(q).unwrap();
                    }
                }
            }
        }
        q.push_back(stream);
        drop(q);
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared.not_empty.notify_one();
    }
}

/// Answer a shed connection with one connection-level `Rejected` frame
/// (request id 0, fault-only opcode) so the client sees a clean refusal
/// instead of a silent close.
fn reject_connection(mut stream: TcpStream) {
    let mut frame = Vec::with_capacity(64);
    wire::encode_reply(
        &mut frame,
        0,
        0,
        &Reply::Fault(Fault::rejected("accept backlog full; retry later")),
    );
    drop(stream.write_all(&frame));
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = next_connection(shared) {
        serve_connection(shared, stream);
    }
}

fn next_connection(shared: &Shared) -> Option<TcpStream> {
    let mut q = shared.queue.lock().unwrap();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(stream) = q.pop_front() {
            shared.not_full.notify_one();
            return Some(stream);
        }
        q = shared.not_empty.wait(q).unwrap();
    }
}

/// One shopper session opened over this connection.
struct ConnSession {
    shopper: u64,
    session: crate::session::Session,
}

/// Serve one connection to completion: read, drain every complete frame,
/// write all responses back in one batch, repeat. The receive/send buffers
/// and the scratch block are reused for the connection's whole lifetime.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    drop(stream.set_nodelay(true));
    drop(stream.set_read_timeout(Some(Duration::from_millis(50))));
    let mut recv: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut send: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = [0u8; 16 * 1024];
    let mut sessions: HashMap<u64, ConnSession> = HashMap::with_capacity(4);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => recv.extend_from_slice(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        let mut consumed = 0;
        loop {
            match wire::peek_header(&recv[consumed..], shared.cfg.max_payload) {
                Ok(None) => break,
                Ok(Some(h)) => {
                    let frame_len = HEADER_LEN + h.payload_len as usize;
                    if recv.len() - consumed < frame_len {
                        break;
                    }
                    let payload = &recv[consumed + HEADER_LEN..consumed + frame_len];
                    handle_frame(
                        shared,
                        h.opcode,
                        h.request_id,
                        payload,
                        &mut sessions,
                        &mut send,
                    );
                    consumed += frame_len;
                }
                Err(e) => {
                    // Framing is lost (bad magic/version/length): answer with
                    // one protocol fault and close — there is no way to
                    // resynchronize the stream.
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    wire::encode_reply(&mut send, 0, 0, &Reply::Fault(Fault::protocol(&e)));
                    drop(stream.write_all(&send));
                    return;
                }
            }
        }
        recv.drain(..consumed);
        if !send.is_empty() {
            if stream.write_all(&send).is_err() {
                return;
            }
            send.clear();
        }
    }
}

/// Decode and execute one request frame, appending the response to `send`.
fn handle_frame(
    shared: &Shared,
    opcode: u16,
    request_id: u64,
    payload: &[u8],
    sessions: &mut HashMap<u64, ConnSession>,
    send: &mut Vec<u8>,
) {
    let req = match wire::decode_request(opcode, payload) {
        Ok(req) => req,
        Err(e) => {
            // The frame boundary is intact (header was valid), so a payload
            // decode error faults this request and keeps the connection.
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            wire::encode_reply(send, request_id, opcode, &Reply::Fault(Fault::protocol(&e)));
            return;
        }
    };
    shared
        .counters
        .requests_served
        .fetch_add(1, Ordering::Relaxed);

    // Admission: every request except Stats costs one token from the bucket
    // of the shopper it acts for.
    let shopper = match &req {
        Request::OpenSession { shopper, .. } => Some(*shopper),
        Request::Stats => None,
        Request::Quote { session, .. }
        | Request::QuoteBatch { session, .. }
        | Request::BuySample { session, .. }
        | Request::Execute { session, .. }
        | Request::Repin { session }
        | Request::CloseSession { session } => match sessions.get(session) {
            Some(cs) => Some(cs.shopper),
            None => {
                wire::encode_reply(
                    send,
                    request_id,
                    opcode,
                    &Reply::Fault(Fault::unknown_session(*session)),
                );
                return;
            }
        },
    };
    if let Some(shopper) = shopper {
        if !shared.admit(shopper) {
            shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            wire::encode_reply(
                send,
                request_id,
                opcode,
                &Reply::Fault(Fault::rejected("shopper rate limit exceeded; retry later")),
            );
            return;
        }
    }

    let reply = match req {
        Request::OpenSession {
            shopper,
            seed,
            budget,
        } => match shared.mgr.open(SessionConfig { budget, seed }) {
            Ok(session) => {
                let id = session.id().0;
                let version = session.pinned_version();
                sessions.insert(id, ConnSession { shopper, session });
                Reply::Ok(Response::OpenSession {
                    session: id,
                    version,
                })
            }
            Err(e) => Reply::Fault(Fault::from_session_error(&e)),
        },
        Request::Quote {
            session,
            dataset,
            attrs,
        } => {
            let cs = sessions.get(&session).expect("checked above");
            match cs.session.quote(crate::catalog::DatasetId(dataset), &attrs) {
                Ok(price) => Reply::Ok(Response::Quote { price }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::QuoteBatch { session, items } => {
            let cs = sessions.get(&session).expect("checked above");
            match cs.session.quote_batch(&items) {
                Ok(prices) => Reply::Ok(Response::QuoteBatch { prices }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::BuySample {
            session,
            dataset,
            rate,
            key,
        } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            match cs
                .session
                .buy_sample(crate::catalog::DatasetId(dataset), &key, rate)
            {
                Ok((table, price)) => Reply::Ok(Response::BuySample {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::Execute {
            session,
            dataset,
            attrs,
        } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            match cs
                .session
                .execute_by_id(crate::catalog::DatasetId(dataset), &attrs)
            {
                Ok((table, price)) => Reply::Ok(Response::Execute {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }),
                Err(e) => Reply::Fault(Fault::from_session_error(&e)),
            }
        }
        Request::Repin { session } => {
            let cs = sessions.get_mut(&session).expect("checked above");
            Reply::Ok(Response::Repin {
                version: cs.session.repin(),
            })
        }
        Request::Stats => Reply::Ok(Response::Stats(shared.stats())),
        Request::CloseSession { session } => {
            let cs = sessions.remove(&session).expect("checked above");
            let report = shared.mgr.close(cs.session);
            Reply::Ok(Response::CloseSession {
                seed: report.seed,
                version: report.catalog_version,
                purchases: report.purchases.len() as u32,
                spent: report.spent,
                remaining: report.remaining,
            })
        }
    };
    wire::encode_reply(send, request_id, opcode, &reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WireClient;
    use crate::pricing::EntropyPricing;
    use crate::session::SessionManagerConfig;
    use crate::Marketplace;
    use dance_relation::{AttrSet, Table, Value, ValueType};

    fn service(max_sessions: usize) -> Arc<SessionManager> {
        let t = Table::from_rows(
            "sv_a",
            &[("sv_k", ValueType::Int), ("sv_x", ValueType::Str)],
            (0..60)
                .map(|i| vec![Value::Int(i % 6), Value::str(format!("x{}", i % 4))])
                .collect(),
        )
        .unwrap();
        let market = Arc::new(Marketplace::new(vec![t], EntropyPricing::default()));
        Arc::new(SessionManager::new(
            market,
            SessionManagerConfig { max_sessions },
        ))
    }

    fn key(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    #[test]
    fn end_to_end_session_over_the_wire() {
        let mgr = service(8);
        let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();

        let open = client
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: 100.0,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, version }) = open else {
            panic!("expected open, got {open:?}");
        };
        assert_eq!(version, 0);

        let quote = client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        let Reply::Ok(Response::Quote { price }) = quote else {
            panic!("expected quote, got {quote:?}");
        };
        assert!(price > 0.0);

        let bought = client
            .call(&Request::BuySample {
                session,
                dataset: 0,
                rate: 0.5,
                key: key(&["sv_k"]),
            })
            .unwrap();
        let Reply::Ok(Response::BuySample { price, rows, .. }) = bought else {
            panic!("expected sample, got {bought:?}");
        };
        assert!(price > 0.0 && rows > 0);

        let closed = client.call(&Request::CloseSession { session }).unwrap();
        let Reply::Ok(Response::CloseSession {
            purchases, spent, ..
        }) = closed
        else {
            panic!("expected close, got {closed:?}");
        };
        assert_eq!(purchases, 1);
        assert!(spent > 0.0);
        // The wire purchase landed in real marketplace revenue.
        assert_eq!(mgr.market().revenue().to_bits(), spent.to_bits());

        let stats = server.shutdown();
        assert_eq!(stats.requests_served, 4);
        assert_eq!(stats.protocol_errors, 0);
        assert_eq!((stats.sessions_opened, stats.sessions_closed), (1, 1));
    }

    #[test]
    fn pipelined_requests_come_back_in_order_with_matching_ids() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 1,
                seed: 7,
                budget: f64::INFINITY,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open");
        };
        // 32 quotes in flight at once.
        let ids: Vec<u64> = (0..32)
            .map(|_| {
                client.queue(&Request::Quote {
                    session,
                    dataset: 0,
                    attrs: key(&["sv_x"]),
                })
            })
            .collect();
        client.flush().unwrap();
        let mut last_price = None;
        for want in ids {
            let (got, reply) = client.recv_reply().unwrap();
            assert_eq!(got, want, "responses arrive in request order");
            let Reply::Ok(Response::Quote { price }) = reply else {
                panic!("expected quote, got {reply:?}");
            };
            if let Some(prev) = last_price.replace(price.to_bits()) {
                assert_eq!(prev, price.to_bits());
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests_served, 33);
        assert_eq!(stats.protocol_errors, 0);
    }

    #[test]
    fn unknown_session_and_capacity_fault_cleanly() {
        let mgr = service(1);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();

        let reply = client
            .call(&Request::Quote {
                session: 999,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::UnknownSession)
        );

        let open = |c: &mut WireClient| {
            c.call(&Request::OpenSession {
                shopper: 1,
                seed: 1,
                budget: 1.0,
            })
            .unwrap()
        };
        let first = open(&mut client);
        assert!(first.ok().is_some());
        let second = open(&mut client);
        assert_eq!(
            second.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::AtCapacity)
        );
        server.shutdown();
    }

    #[test]
    fn payload_decode_error_faults_but_keeps_the_connection() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        // A Repin frame whose payload is one byte short of a session id.
        client.send_raw_frame(crate::wire::Opcode::Repin as u16, 5, &[0u8; 7]);
        client.flush().unwrap();
        let (id, reply) = client.recv_reply().unwrap();
        assert_eq!(id, 5);
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Protocol)
        );
        // The connection still works.
        let stats = client.call(&Request::Stats).unwrap();
        let Reply::Ok(Response::Stats(s)) = stats else {
            panic!("expected stats");
        };
        assert_eq!(s.protocol_errors, 1);
        server.shutdown();
    }

    #[test]
    fn garbage_magic_gets_a_protocol_fault_then_close() {
        let mgr = service(8);
        let server = Server::start(mgr, ServerConfig::default()).unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        client.send_raw_bytes(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n");
        client.flush().unwrap();
        let (id, reply) = client.recv_reply().unwrap();
        assert_eq!(id, 0, "connection-level fault carries request id 0");
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Protocol)
        );
        // The server closed the connection afterwards.
        assert!(client.recv_reply().is_err());
        let stats = server.shutdown();
        assert_eq!(stats.protocol_errors, 1);
    }

    #[test]
    fn rate_limited_shoppers_get_rejected_frames_not_hangs() {
        let mgr = service(64);
        let server = Server::start(
            mgr,
            ServerConfig {
                rate_limit: Some(RateLimit {
                    per_sec: 0.0001,
                    burst: 2.0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = WireClient::connect(server.addr()).unwrap();
        let open = client
            .call(&Request::OpenSession {
                shopper: 42,
                seed: 1,
                budget: f64::INFINITY,
            })
            .unwrap();
        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
            panic!("expected open");
        };
        // Token 2 of 2 spent on the first quote; the next is rejected.
        assert!(client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap()
            .ok()
            .is_some());
        let rejected = client
            .call(&Request::Quote {
                session,
                dataset: 0,
                attrs: key(&["sv_x"]),
            })
            .unwrap();
        assert_eq!(
            rejected.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Rejected)
        );
        // Stats is exempt from rate limiting and reports the rejection.
        let stats = client.call(&Request::Stats).unwrap();
        let Reply::Ok(Response::Stats(s)) = stats else {
            panic!("expected stats");
        };
        assert_eq!(s.rate_limited, 1);
        server.shutdown();
    }

    #[test]
    fn full_backlog_rejects_connections_with_a_frame() {
        let mgr = service(8);
        // No workers able to drain: occupy the single worker with an idle
        // connection, then overflow the 1-slot backlog.
        let server = Server::start(
            mgr,
            ServerConfig {
                workers: 1,
                backlog: 1,
                on_full: BacklogPolicy::Reject,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let _occupant = WireClient::connect(server.addr()).unwrap();
        // Give the worker a beat to claim the occupant off the queue, then
        // fill the queue slot and overflow it.
        std::thread::sleep(Duration::from_millis(100));
        let _queued = WireClient::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut shed = WireClient::connect(server.addr()).unwrap();
        let (id, reply) = client_first_reply(&mut shed);
        assert_eq!(id, 0);
        assert_eq!(
            reply.fault().map(|f| f.code),
            Some(crate::wire::FaultCode::Rejected)
        );
        let stats = server.shutdown();
        assert!(stats.connections_rejected >= 1);
    }

    fn client_first_reply(c: &mut WireClient) -> (u64, Reply) {
        c.recv_reply().unwrap()
    }
}
