//! The shopper's budget `B` (§2.5) with spend tracking.

use std::fmt;

/// A budget with cumulative spend; refuses overdrafts and malformed amounts.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    limit: f64,
    spent: f64,
}

/// Error returned when a spend is refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetError {
    /// The amount exceeds the admissible headroom.
    OverBudget {
        /// Amount requested.
        requested: f64,
        /// The largest amount [`Budget::try_spend`] would have accepted —
        /// `remaining() + `[`Budget::SPEND_EPSILON`], the same bound
        /// [`Budget::can_afford`] admits against, so error messages and
        /// admission agree at the boundary.
        available: f64,
    },
    /// The amount is negative, NaN or infinite. Without this check a caller
    /// could "spend" a negative amount and *mint* budget (`spent += amount`
    /// would reduce cumulative spend).
    InvalidAmount(f64),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::OverBudget {
                requested,
                available,
            } => write!(
                f,
                "over budget: requested {requested:.4}, available {available:.4}"
            ),
            BudgetError::InvalidAmount(a) => {
                write!(f, "invalid spend amount: {a} (must be finite and ≥ 0)")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

impl Budget {
    /// Float slack for spend admission: [`Budget::can_afford`] accepts up to
    /// `remaining() + SPEND_EPSILON` so a plan quoted at exactly the
    /// remaining budget is not rejected over accumulated float dust, and
    /// [`BudgetError::OverBudget::available`] reports that same bound.
    pub const SPEND_EPSILON: f64 = 1e-9;

    /// A fresh budget of `limit` (negative or non-finite limits are treated
    /// as zero; an infinite limit stays infinite).
    pub fn new(limit: f64) -> Budget {
        Budget {
            limit: if limit.is_nan() { 0.0 } else { limit.max(0.0) },
            spent: 0.0,
        }
    }

    /// Total limit `B`.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Cumulative spend.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining headroom (clamped at zero).
    pub fn remaining(&self) -> f64 {
        (self.limit - self.spent).max(0.0)
    }

    /// The largest single amount admission would accept right now:
    /// `remaining() + `[`Budget::SPEND_EPSILON`].
    pub fn admissible(&self) -> f64 {
        self.remaining() + Self::SPEND_EPSILON
    }

    /// `true` iff `amount` is a well-formed spend that fits the admissible
    /// headroom. Negative, NaN and infinite amounts are never affordable.
    pub fn can_afford(&self, amount: f64) -> bool {
        amount.is_finite() && amount >= 0.0 && amount <= self.admissible()
    }

    /// Spend `amount`, or fail without changing state.
    pub fn try_spend(&mut self, amount: f64) -> Result<(), BudgetError> {
        if !amount.is_finite() || amount < 0.0 {
            return Err(BudgetError::InvalidAmount(amount));
        }
        if amount > self.admissible() {
            return Err(BudgetError::OverBudget {
                requested: amount,
                available: self.admissible(),
            });
        }
        self.spent += amount;
        Ok(())
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}/{:.4} spent", self.spent, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spending_accumulates() {
        let mut b = Budget::new(10.0);
        b.try_spend(4.0).unwrap();
        b.try_spend(5.0).unwrap();
        assert!((b.remaining() - 1.0).abs() < 1e-12);
        assert!((b.spent() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn overdraft_rejected_without_state_change() {
        let mut b = Budget::new(3.0);
        b.try_spend(2.0).unwrap();
        let err = b.try_spend(2.0).unwrap_err();
        assert_eq!(
            err,
            BudgetError::OverBudget {
                requested: 2.0,
                available: 1.0 + Budget::SPEND_EPSILON,
            }
        );
        assert!((b.spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_non_finite_spends_are_rejected() {
        // Regression: `try_spend(-5.0)` used to pass `can_afford` and then
        // *reduce* cumulative spend — a caller could mint budget.
        let mut b = Budget::new(10.0);
        b.try_spend(4.0).unwrap();
        for bad in [-5.0, f64::NEG_INFINITY, f64::INFINITY, f64::NAN] {
            assert!(!b.can_afford(bad), "can_afford({bad}) must be false");
            let err = b.try_spend(bad).unwrap_err();
            match err {
                BudgetError::InvalidAmount(a) => {
                    assert!(a.is_nan() == bad.is_nan() && (a.is_nan() || a == bad))
                }
                other => panic!("expected InvalidAmount, got {other:?}"),
            }
            assert!((b.spent() - 4.0).abs() < 1e-12, "state unchanged");
        }
    }

    #[test]
    fn negative_limit_clamped() {
        let b = Budget::new(-5.0);
        assert_eq!(b.limit(), 0.0);
        assert!(!b.can_afford(0.1));
        assert!(b.can_afford(0.0));
        assert_eq!(Budget::new(f64::NAN).limit(), 0.0);
    }

    #[test]
    fn epsilon_slack_for_float_noise() {
        let mut b = Budget::new(1.0);
        b.try_spend(0.3).unwrap();
        b.try_spend(0.3).unwrap();
        b.try_spend(0.4).unwrap(); // 0.3+0.3+0.4 may exceed 1.0 by float dust
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn admission_and_error_agree_at_the_exact_epsilon_boundary() {
        // Exactly `remaining + SPEND_EPSILON` is admitted …
        let mut b = Budget::new(1.0);
        assert!(b.can_afford(1.0 + Budget::SPEND_EPSILON));
        b.try_spend(1.0 + Budget::SPEND_EPSILON).unwrap();

        // … one ulp past it is rejected, and the error reports exactly the
        // bound admission used, so the two views of the boundary agree.
        let mut c = Budget::new(1.0);
        let one_ulp_past = f64::from_bits((1.0 + Budget::SPEND_EPSILON).to_bits() + 1);
        assert!(!c.can_afford(one_ulp_past));
        let err = c.try_spend(one_ulp_past).unwrap_err();
        match err {
            BudgetError::OverBudget {
                requested,
                available,
            } => {
                assert_eq!(requested.to_bits(), one_ulp_past.to_bits());
                assert_eq!(available.to_bits(), c.admissible().to_bits());
                assert!(c.can_afford(available), "the reported bound is spendable");
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }
}
