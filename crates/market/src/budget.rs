//! The shopper's budget `B` (§2.5) with spend tracking.

use std::fmt;

/// A budget with cumulative spend; refuses overdrafts.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    limit: f64,
    spent: f64,
}

/// Error returned when a spend would exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverBudget {
    /// Amount requested.
    pub requested: f64,
    /// Amount still available.
    pub available: f64,
}

impl fmt::Display for OverBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "over budget: requested {:.4}, available {:.4}",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OverBudget {}

impl Budget {
    /// A fresh budget of `limit` (negative limits are treated as zero).
    pub fn new(limit: f64) -> Budget {
        Budget {
            limit: limit.max(0.0),
            spent: 0.0,
        }
    }

    /// Total limit `B`.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Cumulative spend.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining headroom.
    pub fn remaining(&self) -> f64 {
        (self.limit - self.spent).max(0.0)
    }

    /// `true` iff `amount` fits in the remaining budget (tiny epsilon slack
    /// for float accumulation).
    pub fn can_afford(&self, amount: f64) -> bool {
        amount <= self.remaining() + 1e-9
    }

    /// Spend `amount`, or fail without changing state.
    pub fn try_spend(&mut self, amount: f64) -> Result<(), OverBudget> {
        if !self.can_afford(amount) {
            return Err(OverBudget {
                requested: amount,
                available: self.remaining(),
            });
        }
        self.spent += amount;
        Ok(())
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}/{:.4} spent", self.spent, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spending_accumulates() {
        let mut b = Budget::new(10.0);
        b.try_spend(4.0).unwrap();
        b.try_spend(5.0).unwrap();
        assert!((b.remaining() - 1.0).abs() < 1e-12);
        assert!((b.spent() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn overdraft_rejected_without_state_change() {
        let mut b = Budget::new(3.0);
        b.try_spend(2.0).unwrap();
        let err = b.try_spend(2.0).unwrap_err();
        assert!((err.available - 1.0).abs() < 1e-12);
        assert!((b.spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_limit_clamped() {
        let b = Budget::new(-5.0);
        assert_eq!(b.limit(), 0.0);
        assert!(!b.can_afford(0.1));
        assert!(b.can_afford(0.0));
    }

    #[test]
    fn epsilon_slack_for_float_noise() {
        let mut b = Budget::new(1.0);
        b.try_spend(0.3).unwrap();
        b.try_spend(0.3).unwrap();
        b.try_spend(0.4).unwrap(); // 0.3+0.3+0.4 may exceed 1.0 by float dust
        assert!(b.remaining() < 1e-9);
    }
}
