//! Dataset identities and schema-level metadata.
//!
//! Existing marketplaces (Azure Marketplace, BigQuery) publish schemas and
//! coarse statistics for free; DANCE builds the I-layer of its join graph from
//! exactly this information (§4), before buying a single sample.

use dance_relation::{AttrSet, Schema};
use std::fmt;

/// Stable identifier of a dataset inside one marketplace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatasetId(pub u32);

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Free, schema-level metadata of one marketplace dataset.
#[derive(Debug, Clone)]
pub struct DatasetMeta {
    /// Identifier.
    pub id: DatasetId,
    /// Human-readable name.
    pub name: String,
    /// Full schema (attribute names + types).
    pub schema: Schema,
    /// Advertised row count.
    pub num_rows: usize,
    /// The dataset's designated join-key attributes (what correlated samples
    /// are keyed on when a shopper has not yet fixed a join plan).
    pub default_key: AttrSet,
    /// Monotone update counter: 0 at listing time, bumped by every seller
    /// update ([`crate::Marketplace::apply_update`]). Shoppers compare it
    /// against the version their samples were bought at to decide whether
    /// catalog state is stale.
    pub version: u64,
}

impl DatasetMeta {
    /// Attribute-name set of the dataset (`AS(v)` of Definition 4.2).
    pub fn attr_set(&self) -> AttrSet {
        self.schema.attr_set()
    }

    /// Shared attributes with another dataset (candidate join attributes).
    pub fn common_attrs(&self, other: &DatasetMeta) -> AttrSet {
        self.schema.common(&other.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::ValueType;

    fn meta(id: u32, name: &str, attrs: &[(&str, ValueType)]) -> DatasetMeta {
        let schema = Schema::from_pairs(attrs).unwrap();
        let default_key = AttrSet::singleton(schema.attributes()[0].id);
        DatasetMeta {
            id: DatasetId(id),
            name: name.into(),
            schema,
            num_rows: 100,
            default_key,
            version: 0,
        }
    }

    #[test]
    fn common_attrs_by_name() {
        let a = meta(
            0,
            "a",
            &[("cat_j", ValueType::Int), ("cat_x", ValueType::Str)],
        );
        let b = meta(
            1,
            "b",
            &[("cat_j", ValueType::Int), ("cat_y", ValueType::Str)],
        );
        assert_eq!(a.common_attrs(&b), AttrSet::from_names(["cat_j"]));
        assert_eq!(a.attr_set().len(), 2);
    }

    #[test]
    fn display_id() {
        assert_eq!(DatasetId(3).to_string(), "D3");
    }
}
