//! End-to-end pins of the selection-vector join pipeline: the
//! late-materialization path must reproduce the per-hop materializing
//! reference — tables, re-sampling stats, and estimator outputs — bit-exact,
//! at explicit executors and under whatever `DANCE_THREADS` CI sets.

use dance_quality::tane::TaneConfig;
use dance_relation::join::JoinEdge;
use dance_relation::{AttrSet, Executor, InternerRegistry, Table, Value, ValueType};
use dance_sampling::estimators::{estimate_correlation, estimate_quality, SampledPath};
use dance_sampling::resample::{
    join_tree_bounded, join_tree_bounded_tables, join_tree_bounded_with, ResampleConfig,
};

fn assert_same_table(a: &Table, b: &Table) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.schema().attributes(), b.schema().attributes());
    assert_eq!(a.num_rows(), b.num_rows());
    for r in 0..a.num_rows() {
        assert_eq!(a.row(r), b.row(r), "row {r} diverged");
    }
}

/// A 4-table string-keyed chain with NULL keys, duplicate fan-out and a float
/// payload — interned through `reg` when given.
fn chain(reg: Option<&InternerRegistry>) -> Vec<Table> {
    let make = |name: &str, attrs: &[(&str, ValueType)], rows: Vec<Vec<Value>>| match reg {
        Some(reg) => Table::from_rows_interned(reg, name, attrs, rows).unwrap(),
        None => Table::from_rows(name, attrs, rows).unwrap(),
    };
    let a = make(
        "A",
        &[("jp_k1", ValueType::Str), ("jp_x", ValueType::Int)],
        (0..120)
            .map(|i| {
                vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("a{}", i % 15))
                    },
                    Value::Int(i),
                ]
            })
            .collect(),
    );
    let b = make(
        "B",
        &[("jp_k1", ValueType::Str), ("jp_k2", ValueType::Str)],
        (0..90)
            .map(|i| {
                vec![
                    Value::str(format!("a{}", i % 20)),
                    Value::str(format!("b{}", i % 9)),
                ]
            })
            .collect(),
    );
    let c = make(
        "C",
        &[("jp_k2", ValueType::Str), ("jp_k3", ValueType::Int)],
        (0..60)
            .map(|i| vec![Value::str(format!("b{}", i % 12)), Value::Int(i % 7)])
            .collect(),
    );
    let d = make(
        "D",
        &[("jp_k3", ValueType::Int), ("jp_w", ValueType::Float)],
        (0..40)
            .map(|i| vec![Value::Int(i % 7), Value::Float(i as f64 / 3.0)])
            .collect(),
    );
    vec![a, b, c, d]
}

fn chain_edges() -> Vec<JoinEdge> {
    vec![
        JoinEdge {
            a: 0,
            b: 1,
            on: AttrSet::from_names(["jp_k1"]),
        },
        JoinEdge {
            a: 1,
            b: 2,
            on: AttrSet::from_names(["jp_k2"]),
        },
        JoinEdge {
            a: 2,
            b: 3,
            on: AttrSet::from_names(["jp_k3"]),
        },
    ]
}

/// Selection pipeline == per-hop pipeline: joined table and §3.2 stats, with
/// and without re-sampling, shared and private dictionaries, at explicit
/// forced-chunking executors.
#[test]
fn bounded_tree_join_matches_materializing_reference() {
    let reg = InternerRegistry::new();
    for tables in [chain(None), chain(Some(&reg))] {
        let refs: Vec<&Table> = tables.iter().collect();
        for cfg in [
            None,
            Some(ResampleConfig {
                eta: 100,
                rate: 0.5,
                seed: 42,
            }),
            Some(ResampleConfig {
                eta: 10,
                rate: 0.25,
                seed: 7,
            }),
        ] {
            let (reference, ref_stats) =
                join_tree_bounded_tables(&refs, &chain_edges(), cfg.as_ref()).unwrap();
            let (late, stats) = join_tree_bounded(&refs, &chain_edges(), cfg.as_ref()).unwrap();
            assert_same_table(&late, &reference);
            assert_eq!(stats, ref_stats);
            for threads in [1usize, 4] {
                let exec = Executor::with_grain(threads, 1);
                let (late, stats) =
                    join_tree_bounded_with(&exec, &refs, &chain_edges(), cfg.as_ref()).unwrap();
                assert_same_table(&late, &reference);
                assert_eq!(stats, ref_stats);
            }
        }
    }
}

/// A `SampledPath`'s estimator outputs are unchanged by late materialization:
/// ĈORR and Q̂ on the selection-joined path equal the per-hop reference
/// bit-for-bit.
#[test]
fn sampled_path_estimator_outputs_pinned() {
    let tables = chain(None);
    let refs: Vec<&Table> = tables.iter().collect();
    let resample = Some(ResampleConfig {
        eta: 150,
        rate: 0.5,
        seed: 3,
    });
    for seed in [1u64, 9, 23] {
        let path = SampledPath::from_tables(&refs, &chain_edges(), 0.7, seed, resample).unwrap();
        let (late, stats) = path.join().unwrap();
        let sample_refs: Vec<&Table> = path.samples.iter().collect();
        let (reference, ref_stats) =
            join_tree_bounded_tables(&sample_refs, &path.edges, path.resample.as_ref()).unwrap();
        assert_same_table(&late, &reference);
        assert_eq!(stats, ref_stats);
        if late.is_empty() {
            continue;
        }
        let x = AttrSet::from_names(["jp_x"]);
        let y = AttrSet::from_names(["jp_w"]);
        let corr_late = estimate_correlation(&late, &x, &y).unwrap();
        let corr_ref = estimate_correlation(&reference, &x, &y).unwrap();
        assert_eq!(corr_late.to_bits(), corr_ref.to_bits(), "seed {seed}");
        let cfg = TaneConfig {
            error_threshold: 0.2,
            max_lhs: 1,
            max_attrs: 8,
        };
        let q_late = estimate_quality(&late, &cfg).unwrap();
        let q_ref = estimate_quality(&reference, &cfg).unwrap();
        assert_eq!(q_late.to_bits(), q_ref.to_bits(), "seed {seed}");
    }
}
