//! # dance-sampling — correlated sampling and estimation for DANCE
//!
//! DANCE never touches full marketplace instances during search: the offline
//! phase buys *samples* and every quantity the online phase optimizes —
//! correlation, quality, join informativeness — is estimated from them (§3).
//!
//! * [`correlated`] — correlated sampling after Vengerov et al. \[30\]: a tuple
//!   is kept iff a shared hash of its join-key value, mapped uniformly into
//!   `[0, 1)`, falls below the sampling rate `p`. Because the hash is shared
//!   across tables, matching tuples survive *together*, which is what makes
//!   the join-based estimators behave (Theorem 3.1).
//! * [`bernoulli`] — independent per-row sampling, as the ablation baseline
//!   (correlated vs. independent sampling accuracy).
//! * [`resample`] — correlated **re-sampling** (§3.2): along a multi-table
//!   join path, any intermediate result larger than the threshold `η` is
//!   re-sampled at a fixed rate, bounding intermediate sizes while keeping
//!   ratio-type estimators unbiased (Theorem 3.2).
//! * [`estimators`] — the estimators of §3: `ĴI`, `ĈORR`, `Q̂`, packaged over
//!   sampled join paths.

pub mod bernoulli;
pub mod correlated;
pub mod estimators;
pub mod resample;

pub use bernoulli::bernoulli_sample;
pub use correlated::CorrelatedSampler;
pub use estimators::{estimate_correlation, estimate_ji, estimate_quality, SampledPath};
pub use resample::{
    join_tree_bounded, join_tree_bounded_tables, join_tree_bounded_with, BoundedHook,
    ResampleConfig, ResampleStats,
};
