//! Correlated sampling (Vengerov et al. \[30\], §3 of the paper).
//!
//! For a tuple `t` with join-key value `t[J]`, include `t` in the sample iff
//! `h(t[J]) ≤ p`, where `h` maps key values uniformly into `[0, 1)` and `p`
//! is the sampling rate. The hash is **shared across tables** (same seed), so
//! for any key value either *all* carriers of that value survive in every
//! table or none do — joins of samples are exactly the sampled joins, the
//! property behind the unbiasedness of the §3 estimators.

use dance_relation::hash::{stable_hash64, unit_interval, FxHasher};
use dance_relation::{group_ids, AttrSet, ColumnCells, Result, Table, Value};
use std::hash::Hasher;

/// Deterministic correlated sampler: `rate` ∈ \[0, 1\], shared `seed`.
#[derive(Debug, Clone, Copy)]
pub struct CorrelatedSampler {
    /// Sampling rate `p`: expected fraction of *key values* kept.
    pub rate: f64,
    /// Hash seed; two samplers correlate iff their seeds are equal.
    pub seed: u64,
}

impl CorrelatedSampler {
    /// Construct (clamps rate into `\[0, 1\]`).
    pub fn new(rate: f64, seed: u64) -> CorrelatedSampler {
        CorrelatedSampler {
            rate: rate.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The inclusion score of one key (uniform in `[0,1)` over keys).
    ///
    /// Depends only on the key's *values* (strings, not dictionary codes), so
    /// it is identical across tables, registries and runs — the property
    /// correlated sampling rests on. [`Self::sample`] computes the same score
    /// straight off the columnar storage; the two paths are pinned
    /// bit-identical by `columnar_scores_match_value_scores`.
    pub fn score(&self, key: &[dance_relation::Value]) -> f64 {
        unit_interval(stable_hash64(self.seed, key))
    }

    /// Sample `t` on join attributes `key_attrs` (the `t[J]` of §3).
    ///
    /// Rows whose key hashes below `rate` survive; duplicates of a key live or
    /// die together, here and in every other table sampled with the same seed.
    ///
    /// Duplicates share their key's fate by construction, so the key is
    /// scored once per *distinct* group (via the dense group-id kernel)
    /// rather than once per row — the per-row work is a `u32` table lookup.
    /// Scoring streams each group's representative cells into the seeded
    /// hasher directly (dictionary strings resolved under one read lock), so
    /// no boxed key is materialized; the byte stream fed to the hasher is
    /// exactly what hashing the materialized `[Value]` key would feed, so the
    /// kept set equals scoring every row.
    pub fn sample(&self, t: &Table, key_attrs: &AttrSet) -> Result<Table> {
        let g = group_ids(t, key_attrs)?;
        let cols = t.attr_indices(key_attrs)?;
        let cells: Vec<ColumnCells<'_>> = cols.iter().map(|&c| t.column(c).cells()).collect();
        let group_kept: Vec<bool> = g
            .representatives()
            .into_iter()
            .map(|rep| self.score_row(t, &cols, &cells, rep as usize) < self.rate)
            .collect();
        let keep: Vec<u32> = g
            .ids()
            .iter()
            .enumerate()
            .filter(|&(_, &gid)| group_kept[gid as usize])
            .map(|(r, _)| r as u32)
            .collect();
        Ok(t.gather(&keep)
            .with_name(format!("{}@{:.2}", t.name(), self.rate)))
    }

    /// Columnar twin of [`Self::score`]: reproduces, write for write, what
    /// `stable_hash64(seed, &[Value])` feeds the hasher (slice length prefix,
    /// then [`Value`]'s tag + payload per cell).
    fn score_row(&self, t: &Table, cols: &[usize], cells: &[ColumnCells<'_>], row: usize) -> f64 {
        let mut h = FxHasher::with_seed(self.seed);
        h.write_usize(cols.len());
        for (&c, cell) in cols.iter().zip(cells) {
            if t.column(c).is_null(row) {
                h.write_u8(0);
                continue;
            }
            match cell {
                ColumnCells::Int(v) => {
                    h.write_u8(1);
                    h.write_u64(v[row] as u64);
                }
                ColumnCells::Float(v) => {
                    h.write_u8(2);
                    h.write_u64(Value::canonical_bits(v[row]));
                }
                ColumnCells::Str(codes, dict) => {
                    h.write_u8(3);
                    h.write(dict.get(codes[row]).as_bytes());
                }
            }
        }
        unit_interval(dance_relation::hash::splitmix64(h.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::join::{hash_join, JoinKind};
    use dance_relation::{Table, Value, ValueType};

    fn keyed_table(name: &str, attr: &str, n: usize, dup: usize) -> Table {
        let rows = (0..n)
            .flat_map(|k| {
                (0..dup).map(move |d| vec![Value::Int(k as i64), Value::Int((k * 100 + d) as i64)])
            })
            .collect();
        Table::from_rows(
            name,
            &[
                (attr, ValueType::Int),
                (&format!("{attr}_payload_{name}"), ValueType::Int),
            ],
            rows,
        )
        .unwrap()
    }

    #[test]
    fn rate_zero_and_one() {
        let t = keyed_table("t", "cs_k", 50, 2);
        let s = CorrelatedSampler::new(0.0, 7);
        assert_eq!(
            s.sample(&t, &AttrSet::from_names(["cs_k"]))
                .unwrap()
                .num_rows(),
            0
        );
        let s = CorrelatedSampler::new(1.0, 7);
        assert_eq!(
            s.sample(&t, &AttrSet::from_names(["cs_k"]))
                .unwrap()
                .num_rows(),
            t.num_rows()
        );
    }

    #[test]
    fn keys_live_or_die_together() {
        let t = keyed_table("t", "cs_k", 100, 3);
        let s = CorrelatedSampler::new(0.5, 11);
        let sample = s.sample(&t, &AttrSet::from_names(["cs_k"])).unwrap();
        // Every surviving key must appear exactly `dup` times.
        let counts = dance_relation::value_counts(&sample, &AttrSet::from_names(["cs_k"])).unwrap();
        for (k, c) in counts {
            assert_eq!(c, 3, "key {k:?} survived partially");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let t = keyed_table("t", "cs_k", 200, 1);
        let on = AttrSet::from_names(["cs_k"]);
        let a = CorrelatedSampler::new(0.3, 1).sample(&t, &on).unwrap();
        let b = CorrelatedSampler::new(0.3, 1).sample(&t, &on).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        let c = CorrelatedSampler::new(0.3, 2).sample(&t, &on).unwrap();
        // Overwhelmingly likely to differ.
        let keys = |t: &Table| {
            (0..t.num_rows())
                .map(|r| t.value(r, 0))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_ne!(keys(&a), keys(&c));
    }

    #[test]
    fn expected_rate_is_honored() {
        let t = keyed_table("t", "cs_k", 2000, 1);
        let s = CorrelatedSampler::new(0.25, 3);
        let got = s.sample(&t, &AttrSet::from_names(["cs_k"])).unwrap();
        let frac = got.num_rows() as f64 / t.num_rows() as f64;
        assert!((frac - 0.25).abs() < 0.05, "frac = {frac}");
    }

    /// The defining property: join of samples == correlated sample of the join.
    #[test]
    fn join_of_samples_equals_sample_of_join() {
        let l = keyed_table("L", "cs_j", 300, 2);
        let r = keyed_table("R", "cs_j", 300, 1);
        let on = AttrSet::from_names(["cs_j"]);
        let s = CorrelatedSampler::new(0.4, 99);

        let sl = s.sample(&l, &on).unwrap();
        let sr = s.sample(&r, &on).unwrap();
        let join_of_samples = hash_join(&sl, &sr, &on, JoinKind::Inner).unwrap();

        let full_join = hash_join(&l, &r, &on, JoinKind::Inner).unwrap();
        let cols = full_join.attr_indices(&on).unwrap();
        let sampled_join = full_join.filter(|row| s.score(&full_join.key(row, &cols)) < 0.4);

        assert_eq!(join_of_samples.num_rows(), sampled_join.num_rows());
    }

    #[test]
    fn multi_attribute_keys_supported() {
        let t = Table::from_rows(
            "m",
            &[("cs_k1", ValueType::Int), ("cs_k2", ValueType::Str)],
            (0..100)
                .map(|i| vec![Value::Int(i % 10), Value::str(["p", "q"][i as usize % 2])])
                .collect(),
        )
        .unwrap();
        let s = CorrelatedSampler::new(0.5, 5);
        let sample = s
            .sample(&t, &AttrSet::from_names(["cs_k1", "cs_k2"]))
            .unwrap();
        assert!(sample.num_rows() < t.num_rows());
        assert!(sample.num_rows() > 0);
    }

    #[test]
    fn missing_key_attr_is_error() {
        let t = keyed_table("t", "cs_k", 10, 1);
        let s = CorrelatedSampler::new(0.5, 5);
        assert!(s.sample(&t, &AttrSet::from_names(["cs_absent"])).is_err());
    }

    /// The columnar scoring path must feed the hasher exactly what hashing
    /// the materialized `[Value]` key feeds it — across every type, NULLs,
    /// float canonicalization, and regardless of dictionary sharing.
    #[test]
    fn columnar_scores_match_value_scores() {
        let t = Table::from_rows(
            "mix",
            &[
                ("csc_s", ValueType::Str),
                ("csc_i", ValueType::Int),
                ("csc_f", ValueType::Float),
            ],
            vec![
                vec![Value::str("u"), Value::Int(1), Value::Float(0.5)],
                vec![Value::str("v"), Value::Null, Value::Float(-0.0)],
                vec![Value::Null, Value::Int(-7), Value::Float(f64::NAN)],
                vec![Value::str("u"), Value::Int(1), Value::Null],
                vec![Value::str(""), Value::Int(0), Value::Float(0.0)],
            ],
        )
        .unwrap();
        let reg = dance_relation::InternerRegistry::new();
        for table in [t.clone(), t.intern_into(&reg)] {
            let on = AttrSet::from_names(["csc_s", "csc_i", "csc_f"]);
            let s = CorrelatedSampler::new(0.5, 99);
            let g = dance_relation::group_ids(&table, &on).unwrap();
            let cols = table.attr_indices(&on).unwrap();
            let cells: Vec<ColumnCells<'_>> =
                cols.iter().map(|&c| table.column(c).cells()).collect();
            for rep in g.representatives() {
                let columnar = s.score_row(&table, &cols, &cells, rep as usize);
                let keyed = s.score(&table.key(rep as usize, &cols));
                assert_eq!(columnar.to_bits(), keyed.to_bits(), "row {rep}");
            }
        }
    }

    /// Interning must not change which rows a sampler keeps (scores hash
    /// string values, not dictionary codes).
    #[test]
    fn interned_sample_equals_plain_sample() {
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| vec![Value::str(format!("k{}", i % 60)), Value::Int(i)])
            .collect();
        let t = Table::from_rows(
            "p",
            &[("csi_k", ValueType::Str), ("csi_v", ValueType::Int)],
            rows,
        )
        .unwrap();
        let reg = dance_relation::InternerRegistry::new();
        // Pre-populate the shared dictionary in a different order so codes
        // genuinely differ from the per-column dictionary's.
        for i in (0..60).rev() {
            reg.dict_for(dance_relation::attr("csi_k"))
                .intern(&format!("k{i}"));
        }
        let it = t.intern_into(&reg);
        let on = AttrSet::from_names(["csi_k"]);
        let s = CorrelatedSampler::new(0.4, 17);
        let a = s.sample(&t, &on).unwrap();
        let b = s.sample(&it, &on).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        for r in 0..a.num_rows() {
            assert_eq!(a.row(r), b.row(r));
        }
    }
}
