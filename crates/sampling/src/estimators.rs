//! The §3 estimators: `ĴI`, `ĈORR`, `Q̂` from correlated samples.
//!
//! The estimators *are* the exact measures applied to sampled data — the
//! content of Theorems 3.1/3.2 is that correlated (re-)sampling makes those
//! plug-in values unbiased for the full-data quantities. What this module adds
//! is the sampling design for join *paths*:
//!
//! Each table is sampled with one shared-seed hash **per incident join edge**,
//! keeping a row only if it passes every incident edge's test. A row of the
//! full join then survives iff each of its edge-key hashes falls below the
//! rate — i.e. the join of the per-table samples is exactly a correlated
//! sample of the full join. End-point tables of a path are sampled at rate
//! `p`, interior tables at `p` per incident edge.

use crate::correlated::CorrelatedSampler;
use crate::resample::{join_tree_bounded, ResampleConfig, ResampleStats};
use dance_info::correlation::{correlation_with, CorrOptions};
use dance_info::ji::join_informativeness;
use dance_quality::tane::TaneConfig;
use dance_relation::hash::{splitmix64, stable_hash64};
use dance_relation::join::JoinEdge;
use dance_relation::{AttrSet, Result, Table};

/// Seed for one edge's shared hash: a function of the base seed and the
/// edge's join-attribute *names* (both endpoints must agree).
///
/// Per-name hashes combine commutatively, so the seed is **order-stable**: it
/// does not depend on the order the names were interned (the process-global
/// id order `AttrSet` sorts by) or enumerated in — only on the set of names.
/// No per-call string buffer is allocated; each name streams straight into
/// the seeded hasher (`AttrId::name` hands out the interned `Arc<str>`).
fn edge_seed(base: u64, on: &AttrSet) -> u64 {
    let mut acc = 0u64;
    for a in on.iter() {
        acc = acc.wrapping_add(stable_hash64(base, &*a.name()));
    }
    splitmix64(base ^ acc)
}

/// A join path (tree) over correlated samples of marketplace instances.
#[derive(Debug, Clone)]
pub struct SampledPath {
    /// Correlated samples, aligned with the edge indices.
    pub samples: Vec<Table>,
    /// Join tree over `samples`.
    pub edges: Vec<JoinEdge>,
    /// Optional §3.2 re-sampling applied during the join.
    pub resample: Option<ResampleConfig>,
}

impl SampledPath {
    /// Sample every table at `rate` (per incident edge) with base `seed`.
    pub fn from_tables(
        tables: &[&Table],
        edges: &[JoinEdge],
        rate: f64,
        seed: u64,
        resample: Option<ResampleConfig>,
    ) -> Result<SampledPath> {
        let mut samples = Vec::with_capacity(tables.len());
        for (i, t) in tables.iter().enumerate() {
            // First incident edge samples straight off the borrowed input;
            // the full table is only copied for isolated vertices.
            let mut current: Option<Table> = None;
            for e in edges.iter().filter(|e| e.a == i || e.b == i) {
                let s = CorrelatedSampler::new(rate, edge_seed(seed, &e.on));
                current = Some(s.sample(current.as_ref().unwrap_or(t), &e.on)?);
            }
            let sampled = current.unwrap_or_else(|| (*t).clone());
            samples.push(sampled.with_name(format!("{}@{rate:.2}", t.name())));
        }
        Ok(SampledPath {
            samples,
            edges: edges.to_vec(),
            resample,
        })
    }

    /// Join the samples along the path (with re-sampling if configured).
    ///
    /// Runs on the late-materialization selection pipeline: per-hop
    /// [`dance_relation::sel::JoinSel`]s compose across the tree and one
    /// table is materialized for the estimator.
    pub fn join(&self) -> Result<(Table, ResampleStats)> {
        let refs: Vec<&Table> = self.samples.iter().collect();
        join_tree_bounded(&refs, &self.edges, self.resample.as_ref())
    }
}

/// `ĴI(D₁, D₂)` (Equation 6): exact JI on correlated samples — Theorem 3.1
/// states `E[JI(S₁, S₂)] = JI(D₁, D₂)`.
pub fn estimate_ji(d1: &Table, d2: &Table, j: &AttrSet, rate: f64, seed: u64) -> Result<f64> {
    let s = CorrelatedSampler::new(rate, edge_seed(seed, j));
    let s1 = s.sample(d1, j)?;
    let s2 = s.sample(d2, j)?;
    join_informativeness(&s1, &s2, j)
}

/// `ĈORR(AS, AT)` (Equation 7): correlation measured on a sampled join.
pub fn estimate_correlation(sampled_join: &Table, x: &AttrSet, y: &AttrSet) -> Result<f64> {
    correlation_with(sampled_join, x, y, CorrOptions::default())
}

/// `Q̂` (Equation 8): Definition 2.3 quality measured on a sampled join.
pub fn estimate_quality(sampled_join: &Table, cfg: &TaneConfig) -> Result<f64> {
    dance_quality::joint::instance_set_quality(sampled_join, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{Table, Value, ValueType};

    fn fk_pair(n_keys: usize, fanout: usize) -> (Table, Table) {
        let dim = Table::from_rows(
            "dim",
            &[("est_k", ValueType::Int), ("est_cat", ValueType::Str)],
            (0..n_keys)
                .map(|k| vec![Value::Int(k as i64), Value::str(["u", "v", "w"][k % 3])])
                .collect(),
        )
        .unwrap();
        let fact = Table::from_rows(
            "fact",
            &[("est_k", ValueType::Int), ("est_m", ValueType::Float)],
            (0..n_keys * fanout)
                .map(|i| {
                    let k = i % n_keys;
                    vec![Value::Int(k as i64), Value::Float((k % 3) as f64 * 10.0)]
                })
                .collect(),
        )
        .unwrap();
        (dim, fact)
    }

    /// The edge seed must depend only on the *set of names* — not the order
    /// they were interned or enumerated in — and must be allocation-free to
    /// recompute (it runs once per edge per table on every sampling pass).
    #[test]
    fn edge_seed_is_order_stable_and_name_keyed() {
        // Intern in reverse-lexicographic order so the id order `AttrSet`
        // sorts by disagrees with the name order.
        dance_relation::attr("es_zz_probe");
        dance_relation::attr("es_aa_probe");
        let set = AttrSet::from_names(["es_zz_probe", "es_aa_probe"]);
        let manual = |base: u64, names: &[&str]| {
            let mut acc = 0u64;
            for n in names {
                acc = acc.wrapping_add(stable_hash64(base, *n));
            }
            splitmix64(base ^ acc)
        };
        // Same seed from every enumeration order of the same names.
        assert_eq!(
            edge_seed(7, &set),
            manual(7, &["es_aa_probe", "es_zz_probe"])
        );
        assert_eq!(
            edge_seed(7, &set),
            manual(7, &["es_zz_probe", "es_aa_probe"])
        );
        // Sensitive to the base seed and to the name set.
        assert_ne!(edge_seed(7, &set), edge_seed(8, &set));
        assert_ne!(
            edge_seed(7, &set),
            edge_seed(7, &AttrSet::from_names(["es_aa_probe"]))
        );
        // Stable across calls (what makes both endpoints agree).
        assert_eq!(edge_seed(7, &set), edge_seed(7, &set));
    }

    #[test]
    fn ji_estimate_concentrates_on_truth() {
        let (dim, fact) = fk_pair(400, 3);
        let j = AttrSet::from_names(["est_k"]);
        let truth = join_informativeness(&dim, &fact, &j).unwrap();
        let mut mean = 0.0;
        let seeds = 20;
        for seed in 0..seeds {
            mean += estimate_ji(&dim, &fact, &j, 0.5, seed).unwrap();
        }
        mean /= seeds as f64;
        assert!(
            (mean - truth).abs() < 0.05,
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    fn sampled_path_joins_consistently() {
        let (dim, fact) = fk_pair(200, 4);
        let edges = vec![JoinEdge {
            a: 0,
            b: 1,
            on: AttrSet::from_names(["est_k"]),
        }];
        let path = SampledPath::from_tables(&[&dim, &fact], &edges, 0.5, 7, None).unwrap();
        let (j, stats) = path.join().unwrap();
        assert_eq!(stats.resampled_steps, 0);
        // Sampled join only contains keys that survived in both samples.
        assert!(j.num_rows() > 0);
        assert!(j.num_rows() < dim.num_rows() * 4);
    }

    #[test]
    fn correlation_estimate_tracks_truth() {
        let (dim, fact) = fk_pair(600, 2);
        let j = AttrSet::from_names(["est_k"]);
        let edges = vec![JoinEdge {
            a: 0,
            b: 1,
            on: j.clone(),
        }];
        let x = AttrSet::from_names(["est_m"]);
        let y = AttrSet::from_names(["est_cat"]);

        let (full, _) = join_tree_bounded(&[&dim, &fact], &edges, None).unwrap();
        let truth = estimate_correlation(&full, &x, &y).unwrap();

        let mut mean = 0.0;
        let seeds = 15;
        for seed in 0..seeds {
            let path = SampledPath::from_tables(&[&dim, &fact], &edges, 0.6, seed, None).unwrap();
            let (sj, _) = path.join().unwrap();
            mean += estimate_correlation(&sj, &x, &y).unwrap();
        }
        mean /= seeds as f64;
        let rel = (mean - truth).abs() / truth.max(1e-9);
        assert!(rel < 0.15, "mean {mean} vs truth {truth} (rel {rel})");
    }

    #[test]
    fn quality_estimate_tracks_truth() {
        // fact carries an FD est_cat2 → est_grp with ~10% violations.
        let fact = Table::from_rows(
            "q",
            &[
                ("eq_k", ValueType::Int),
                ("eq_cat2", ValueType::Str),
                ("eq_grp", ValueType::Str),
            ],
            (0..1200)
                .map(|i| {
                    let cat = format!("c{}", i % 6);
                    let grp = if i % 10 == 0 {
                        "BAD".to_string()
                    } else {
                        format!("g{}", i % 6)
                    };
                    vec![
                        Value::Int((i % 300) as i64),
                        Value::str(cat),
                        Value::str(grp),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let dim = Table::from_rows(
            "d",
            &[("eq_k", ValueType::Int)],
            (0..300).map(|k| vec![Value::Int(k as i64)]).collect(),
        )
        .unwrap();
        let edges = vec![JoinEdge {
            a: 0,
            b: 1,
            on: AttrSet::from_names(["eq_k"]),
        }];
        let cfg = TaneConfig {
            error_threshold: 0.2,
            max_lhs: 1,
            max_attrs: 8,
        };
        let (full, _) = join_tree_bounded(&[&dim, &fact], &edges, None).unwrap();
        let truth = estimate_quality(&full, &cfg).unwrap();
        let mut mean = 0.0;
        let seeds = 10;
        for seed in 0..seeds {
            let path = SampledPath::from_tables(&[&dim, &fact], &edges, 0.5, seed, None).unwrap();
            let (sj, _) = path.join().unwrap();
            mean += estimate_quality(&sj, &cfg).unwrap();
        }
        mean /= seeds as f64;
        assert!((mean - truth).abs() < 0.08, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn interior_tables_sampled_per_edge() {
        // Chain A - B - C: B passes two tests → roughly rate² survival.
        let a = Table::from_rows(
            "A",
            &[("pe_y", ValueType::Int)],
            (0..1000).map(|i| vec![Value::Int(i % 500)]).collect(),
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("pe_y", ValueType::Int), ("pe_z", ValueType::Int)],
            (0..1000)
                .map(|i| vec![Value::Int(i % 500), Value::Int(i % 400)])
                .collect(),
        )
        .unwrap();
        let c = Table::from_rows(
            "C",
            &[("pe_z", ValueType::Int)],
            (0..1000).map(|i| vec![Value::Int(i % 400)]).collect(),
        )
        .unwrap();
        let edges = vec![
            JoinEdge {
                a: 0,
                b: 1,
                on: AttrSet::from_names(["pe_y"]),
            },
            JoinEdge {
                a: 1,
                b: 2,
                on: AttrSet::from_names(["pe_z"]),
            },
        ];
        let path = SampledPath::from_tables(&[&a, &b, &c], &edges, 0.5, 3, None).unwrap();
        let frac_a = path.samples[0].num_rows() as f64 / 1000.0;
        let frac_b = path.samples[1].num_rows() as f64 / 1000.0;
        assert!((frac_a - 0.5).abs() < 0.1, "frac_a = {frac_a}");
        assert!((frac_b - 0.25).abs() < 0.1, "frac_b = {frac_b}");
    }
}
