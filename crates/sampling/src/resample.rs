//! Correlated re-sampling of intermediate join results (§3.2).
//!
//! Multi-table joins of samples can still blow up: the join of `p`-rate
//! samples has expected size `p · |D₁ ⋈ D₂|` for shared-key correlated
//! sampling, and a long path multiplies fan-outs. §3.2 bounds this by
//! re-sampling any intermediate result whose size exceeds a threshold `η`
//! with a *fixed re-sampling rate*, and proves (Theorem 3.2) that the ratio
//! estimators stay unbiased regardless of `η`.
//!
//! Re-sampling here is uniform over intermediate rows and deterministic in
//! `(seed, step, row)`, so whole experiments replay bit-for-bit.
//!
//! The bounded join runs on the **selection-vector pipeline**
//! ([`dance_relation::sel`]): every hop composes row-id selections on
//! interned symbols, the size check and the re-sampling filter operate on the
//! composed selection (`TreeSel::num_rows` / `TreeSel::retain`), and one
//! table is materialized at the very end for the estimator. The per-hop
//! materializing path survives as [`join_tree_bounded_tables`] — the pinning
//! reference tests compare against; both produce identical tables and stats.

use dance_relation::hash::{stable_hash64, unit_interval};
use dance_relation::join::{join_tree, JoinEdge};
use dance_relation::sel::{join_tree_late_with, TreeSel};
use dance_relation::{Executor, Result, Table};

/// Configuration of §3.2 re-sampling.
#[derive(Debug, Clone, Copy)]
pub struct ResampleConfig {
    /// Intermediate-size threshold `η`; results larger than this are re-sampled.
    pub eta: usize,
    /// Fixed re-sampling rate applied when the threshold trips.
    pub rate: f64,
    /// Seed for the deterministic row selection.
    pub seed: u64,
}

impl Default for ResampleConfig {
    fn default() -> Self {
        ResampleConfig {
            eta: 100_000,
            rate: 0.5,
            seed: 0xDA_7CE,
        }
    }
}

/// What the bounded join actually did — used by tests and EXPERIMENTS.md.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResampleStats {
    /// How many intermediate results exceeded `η` and were re-sampled.
    pub resampled_steps: usize,
    /// Largest intermediate size *before* any re-sampling.
    pub max_intermediate: usize,
    /// Product of applied re-sampling rates (scale factor for count estimates).
    pub cumulative_rate: f64,
}

/// The §3.2 re-sampling hook at the selection level, factored out of
/// [`join_tree_bounded_with`] so that incremental tree drivers — the MCMC
/// search's cached evaluation engine drives
/// [`dance_relation::sel::TreeJoin`] hop by hop — apply re-sampling with the
/// *same* step numbering and seed derivation as the batch pipeline. Composed
/// selections, stats, and every downstream estimator draw stay byte-identical
/// between the two drivers.
#[derive(Debug)]
pub struct BoundedHook<'a> {
    cfg: Option<&'a ResampleConfig>,
    stats: ResampleStats,
    step: u64,
}

impl<'a> BoundedHook<'a> {
    /// Fresh hook state (step 0, empty stats, cumulative rate 1).
    pub fn new(cfg: Option<&'a ResampleConfig>) -> BoundedHook<'a> {
        BoundedHook {
            cfg,
            stats: ResampleStats {
                cumulative_rate: 1.0,
                ..ResampleStats::default()
            },
            step: 0,
        }
    }

    /// Process one intermediate selection: bump the step counter, record
    /// stats, and re-sample via [`TreeSel::retain`] when the size threshold
    /// trips (seed `cfg.seed ^ step`, exactly as the batch pipeline).
    pub fn apply(&mut self, mut sel: TreeSel) -> TreeSel {
        self.step += 1;
        self.stats.max_intermediate = self.stats.max_intermediate.max(sel.num_rows());
        if let Some(c) = self.cfg {
            if sel.num_rows() > c.eta {
                self.stats.resampled_steps += 1;
                self.stats.cumulative_rate *= c.rate;
                let seed = c.seed ^ self.step;
                let keep: Vec<u32> = (0..sel.num_rows() as u32)
                    .filter(|&r| unit_interval(stable_hash64(seed, &(r as u64))) < c.rate)
                    .collect();
                sel.retain(&keep);
            }
        }
        sel
    }

    /// Stats accumulated so far.
    pub fn stats(&self) -> &ResampleStats {
        &self.stats
    }

    /// Consume the hook, yielding its stats.
    pub fn into_stats(self) -> ResampleStats {
        self.stats
    }
}

/// Join `tables` along `edges` with §3.2 intermediate re-sampling, on the
/// global executor.
///
/// With `cfg = None` this is a plain tree join (the "without re-sampling"
/// branch of Figure 8). Runs on the late-materialization selection pipeline:
/// no intermediate table is ever gathered.
pub fn join_tree_bounded(
    tables: &[&Table],
    edges: &[JoinEdge],
    cfg: Option<&ResampleConfig>,
) -> Result<(Table, ResampleStats)> {
    join_tree_bounded_with(&Executor::global(), tables, edges, cfg)
}

/// [`join_tree_bounded`] on an explicit executor (probe/compose/materialize
/// fan out across its workers; output is bit-identical at every thread
/// count).
pub fn join_tree_bounded_with(
    exec: &Executor,
    tables: &[&Table],
    edges: &[JoinEdge],
    cfg: Option<&ResampleConfig>,
) -> Result<(Table, ResampleStats)> {
    let mut hook = BoundedHook::new(cfg);
    let joined = join_tree_late_with(exec, tables, edges, |sel| hook.apply(sel))?;
    Ok((joined, hook.into_stats()))
}

/// The per-hop materializing reference: identical output and stats, one full
/// intermediate [`Table`] gathered per hop. Kept for property-test pinning
/// and the `join_pipeline` bench baseline — production paths use
/// [`join_tree_bounded`].
pub fn join_tree_bounded_tables(
    tables: &[&Table],
    edges: &[JoinEdge],
    cfg: Option<&ResampleConfig>,
) -> Result<(Table, ResampleStats)> {
    let mut stats = ResampleStats {
        cumulative_rate: 1.0,
        ..ResampleStats::default()
    };
    let mut step: u64 = 0;
    let joined = join_tree(tables, edges, |intermediate| {
        step += 1;
        stats.max_intermediate = stats.max_intermediate.max(intermediate.num_rows());
        match cfg {
            Some(c) if intermediate.num_rows() > c.eta => {
                stats.resampled_steps += 1;
                stats.cumulative_rate *= c.rate;
                resample_rows(&intermediate, c.rate, c.seed ^ step)
            }
            _ => intermediate,
        }
    })?;
    Ok((joined, stats))
}

/// Uniform deterministic row sample of an intermediate result.
fn resample_rows(t: &Table, rate: f64, seed: u64) -> Table {
    let keep: Vec<u32> = (0..t.num_rows())
        .filter(|&r| unit_interval(stable_hash64(seed, &(r as u64))) < rate)
        .map(|r| r as u32)
        .collect();
    t.gather(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{AttrSet, Table, Value, ValueType};

    /// A chain A(x,y) ⋈ B(y,z) ⋈ C(z,w) with controllable fan-out.
    fn chain(fanout: usize) -> (Table, Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("rs_x", ValueType::Int), ("rs_y", ValueType::Int)],
            (0..50)
                .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
                .collect(),
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("rs_y", ValueType::Int), ("rs_z", ValueType::Int)],
            (0..10 * fanout)
                .map(|i| vec![Value::Int(i as i64 % 10), Value::Int(i as i64 % 7)])
                .collect(),
        )
        .unwrap();
        let c = Table::from_rows(
            "C",
            &[("rs_z", ValueType::Int), ("rs_w", ValueType::Int)],
            (0..7)
                .map(|i| vec![Value::Int(i), Value::Int(i * 11)])
                .collect(),
        )
        .unwrap();
        (a, b, c)
    }

    fn edges() -> Vec<JoinEdge> {
        vec![
            JoinEdge {
                a: 0,
                b: 1,
                on: AttrSet::from_names(["rs_y"]),
            },
            JoinEdge {
                a: 1,
                b: 2,
                on: AttrSet::from_names(["rs_z"]),
            },
        ]
    }

    #[test]
    fn no_config_means_plain_join() {
        let (a, b, c) = chain(4);
        let (j, stats) = join_tree_bounded(&[&a, &b, &c], &edges(), None).unwrap();
        assert_eq!(stats.resampled_steps, 0);
        assert_eq!(stats.cumulative_rate, 1.0);
        assert!(j.num_rows() > 0);
        assert!(stats.max_intermediate >= j.num_rows() / 2);
    }

    #[test]
    fn threshold_triggers_resampling() {
        let (a, b, c) = chain(8); // A⋈B has 50·8 = 400 rows
        let cfg = ResampleConfig {
            eta: 100,
            rate: 0.25,
            seed: 1,
        };
        let (bounded, stats) = join_tree_bounded(&[&a, &b, &c], &edges(), Some(&cfg)).unwrap();
        assert!(stats.resampled_steps >= 1, "{stats:?}");
        assert!(stats.cumulative_rate < 1.0);
        let (full, _) = join_tree_bounded(&[&a, &b, &c], &edges(), None).unwrap();
        assert!(bounded.num_rows() < full.num_rows());
    }

    #[test]
    fn big_eta_never_triggers() {
        let (a, b, c) = chain(8);
        let cfg = ResampleConfig {
            eta: 10_000_000,
            rate: 0.25,
            seed: 1,
        };
        let (bounded, stats) = join_tree_bounded(&[&a, &b, &c], &edges(), Some(&cfg)).unwrap();
        assert_eq!(stats.resampled_steps, 0);
        let (full, _) = join_tree_bounded(&[&a, &b, &c], &edges(), None).unwrap();
        assert_eq!(bounded.num_rows(), full.num_rows());
    }

    #[test]
    fn deterministic_replay() {
        let (a, b, c) = chain(8);
        let cfg = ResampleConfig {
            eta: 100,
            rate: 0.5,
            seed: 42,
        };
        let (j1, s1) = join_tree_bounded(&[&a, &b, &c], &edges(), Some(&cfg)).unwrap();
        let (j2, s2) = join_tree_bounded(&[&a, &b, &c], &edges(), Some(&cfg)).unwrap();
        assert_eq!(j1.num_rows(), j2.num_rows());
        assert_eq!(s1, s2);
    }

    /// Theorem 3.2 sanity: the *fraction* of rows with a given property is an
    /// unbiased estimate under re-sampling — check the mean over seeds is
    /// close to the full-join fraction.
    #[test]
    fn ratio_estimates_concentrate() {
        let (a, b, c) = chain(10);
        let (full, _) = join_tree_bounded(&[&a, &b, &c], &edges(), None).unwrap();
        let frac_full = fraction_w_zero(&full);
        let mut mean = 0.0;
        let seeds = 30;
        for seed in 0..seeds {
            let cfg = ResampleConfig {
                eta: 120,
                rate: 0.5,
                seed,
            };
            let (bounded, stats) = join_tree_bounded(&[&a, &b, &c], &edges(), Some(&cfg)).unwrap();
            assert!(stats.resampled_steps > 0);
            mean += fraction_w_zero(&bounded);
        }
        mean /= seeds as f64;
        assert!(
            (mean - frac_full).abs() < 0.05,
            "mean over seeds {mean} vs full {frac_full}"
        );
    }

    fn fraction_w_zero(t: &Table) -> f64 {
        let col = t.attr_indices(&AttrSet::from_names(["rs_w"])).unwrap()[0];
        let zeros = (0..t.num_rows())
            .filter(|&r| t.value(r, col) == Value::Int(0))
            .count();
        zeros as f64 / t.num_rows().max(1) as f64
    }
}
