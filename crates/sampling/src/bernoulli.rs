//! Independent (Bernoulli) row sampling — the ablation baseline.
//!
//! Unlike correlated sampling, each row flips its own coin, so matching rows
//! in two tables survive independently and join-based estimates shrink by a
//! factor `p` per side. The `ablation_sampling` experiment quantifies how much
//! worse this makes the §3 estimators.

use dance_relation::hash::{stable_hash64, unit_interval};
use dance_relation::Table;

/// Keep each row independently with probability `rate` (deterministic in
/// `(seed, table name, row index)`).
pub fn bernoulli_sample(t: &Table, rate: f64, seed: u64) -> Table {
    let rate = rate.clamp(0.0, 1.0);
    let name_hash = stable_hash64(seed, t.name());
    let keep: Vec<u32> = (0..t.num_rows())
        .filter(|&r| unit_interval(stable_hash64(name_hash, &(r as u64))) < rate)
        .map(|r| r as u32)
        .collect();
    t.gather(&keep)
        .with_name(format!("{}~{:.2}", t.name(), rate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dance_relation::{Table, Value, ValueType};

    fn t(n: usize) -> Table {
        Table::from_rows(
            "b",
            &[("brn_k", ValueType::Int)],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn extremes() {
        let table = t(100);
        assert_eq!(bernoulli_sample(&table, 0.0, 1).num_rows(), 0);
        assert_eq!(bernoulli_sample(&table, 1.0, 1).num_rows(), 100);
    }

    #[test]
    fn rate_approximately_honored() {
        let table = t(5000);
        let s = bernoulli_sample(&table, 0.3, 42);
        let frac = s.num_rows() as f64 / 5000.0;
        assert!((frac - 0.3).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let table = t(500);
        let a = bernoulli_sample(&table, 0.5, 7);
        let b = bernoulli_sample(&table, 0.5, 7);
        assert_eq!(a.num_rows(), b.num_rows());
        let c = bernoulli_sample(&table, 0.5, 8);
        let rows = |t: &Table| (0..t.num_rows()).map(|r| t.value(r, 0)).collect::<Vec<_>>();
        assert_eq!(rows(&a), rows(&b));
        assert_ne!(rows(&a), rows(&c));
    }
}
