//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build container has no registry access, so this shim implements the
//! API surface the workspace's benches consume — `Criterion::bench_function`,
//! `benchmark_group`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — with a straightforward
//! measure-and-report loop: per sample, the closure is run enough iterations
//! to cover a minimum window, and the median/min/max per-iteration times are
//! printed in a criterion-like format. No statistics beyond that; the point
//! is relative comparison (e.g. dense vs. legacy kernels) under `cargo bench`.
//! Swap the path dependency for the real crate when network access exists.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver (collects settings; measurement happens per bench call).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    min_sample_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            min_sample_window: Duration::from_millis(5),
        }
    }
}

/// Identifier for parameterized benchmarks: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    sample_size: usize,
    min_sample_window: Duration,
    result: &'a mut Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    median: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Measure `f`, keeping its output alive so the call is not optimized out.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size one sample so it covers the minimum window.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.min_sample_window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        *self.result = Some(Stats {
            median: samples[samples.len() / 2],
            min: samples[0],
            max: samples[samples.len() - 1],
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its timing line.
    ///
    /// Mirrors criterion's CLI filtering: any non-flag command-line argument
    /// (`cargo bench -p ... -- <substring>`) restricts the run to benchmarks
    /// whose full name contains one of the given substrings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !name_matches_filter(name) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            sample_size: self.sample_size,
            min_sample_window: self.min_sample_window,
            result: &mut result,
        };
        f(&mut b);
        report(name, result);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// True when `name` passes the command-line substring filter (no non-flag
/// arguments ⇒ everything runs, matching the real crate's default).
fn name_matches_filter(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

fn report(name: &str, stats: Option<Stats>) {
    match stats {
        Some(s) => println!(
            "{name:<48} time: [{} {} {}]",
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.max),
        ),
        None => println!("{name:<48} time: [not measured]"),
    }
}

/// Mirror of criterion's group macro: defines a function running the targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's main macro: runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_and_id_compose_names() {
        let id = BenchmarkId::new("kernel", 42);
        assert_eq!(id.id, "kernel/42");
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter("p"), &7u64, |b, &x| {
            b.iter(|| std::hint::black_box(x + 1))
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains("s"));
    }
}
