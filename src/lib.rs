//! # dance — cost-efficient data acquisition on online data marketplaces
//!
//! A from-scratch Rust reproduction of *“Cost-efficient Data Acquisition on
//! Online Data Marketplaces for Correlation Analysis”* (Li, Sun, Dong, Wang —
//! PVLDB 12, 2019). This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`relation`] | Typed columnar tables, joins, histograms, CSV |
//! | [`info`] | Entropy, cumulative entropy, correlation (Def 2.5), join informativeness (Def 2.4) |
//! | [`quality`] | Partitions, FDs, TANE discovery, join quality (Defs 2.1–2.3) |
//! | [`sampling`] | Correlated sampling & re-sampling, §3 estimators |
//! | [`market`] | Marketplace, entropy-based arbitrage-free pricing, budgets |
//! | [`datagen`] | TPC-H/TPC-E-like generators, dirt injection, the §1 scenario |
//! | [`core`] | Join graph, landmark Steiner search, MCMC, LP/GP baselines, the DANCE middleware |
//!
//! ## Quickstart
//!
//! ```
//! use dance::prelude::*;
//!
//! // A tiny marketplace: two instances joining on `qs_state`.
//! let zip = Table::from_rows(
//!     "zip",
//!     &[("qs_zip", ValueType::Int), ("qs_state", ValueType::Int)],
//!     (0..120).map(|i| vec![Value::Int(i % 40), Value::Int((i % 40) / 8)]).collect(),
//! ).unwrap();
//! let disease = Table::from_rows(
//!     "disease",
//!     &[("qs_state", ValueType::Int), ("qs_disease", ValueType::Str)],
//!     (0..60).map(|i| vec![Value::Int(i % 5), Value::str(format!("d{}", i % 5))]).collect(),
//! ).unwrap();
//! let market = Marketplace::new(vec![zip, disease], EntropyPricing::default());
//!
//! // The shopper owns a source instance with `qs_age` and `qs_zip`.
//! let ds = Table::from_rows(
//!     "DS",
//!     &[("qs_age", ValueType::Int), ("qs_zip", ValueType::Int)],
//!     (0..100).map(|i| vec![Value::Int(20 + (i % 40) / 8), Value::Int(i % 40)]).collect(),
//! ).unwrap();
//!
//! // Offline: buy samples, build the join graph. Online: acquire.
//! let mut dance = Dance::offline(&market, vec![ds], DanceConfig {
//!     sampling_rate: 0.7,
//!     ..DanceConfig::default()
//! }).unwrap();
//! let request = AcquisitionRequest::new(
//!     AttrSet::from_names(["qs_age"]),
//!     AttrSet::from_names(["qs_disease"]),
//! );
//! let plan = dance.acquire(&market, &request).unwrap().expect("plan");
//! assert!(!plan.queries.is_empty());
//! ```

pub use dance_core as core;
pub use dance_datagen as datagen;
pub use dance_info as info;
pub use dance_market as market;
pub use dance_quality as quality;
pub use dance_relation as relation;
pub use dance_sampling as sampling;

/// One-stop imports for applications.
pub mod prelude {
    pub use dance_core::{
        AcquisitionPlan, AcquisitionRequest, Constraints, Dance, DanceConfig, JoinGraph,
        JoinGraphConfig, McmcConfig, PlanMetrics, TargetGraph,
    };
    pub use dance_market::{
        Budget, EntropyPricing, Marketplace, PricingModel, ProjectionQuery, Server, ServerConfig,
        Session, SessionConfig, SessionManager, SessionManagerConfig, WireClient,
    };
    pub use dance_quality::{Fd, TaneConfig};
    pub use dance_relation::{attr, AttrSet, Schema, Table, Value, ValueType};
    pub use dance_sampling::CorrelatedSampler;
}
