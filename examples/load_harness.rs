//! End-to-end load harness for the wire serving layer: N client threads
//! drive mixed quote / batch-quote / sample / purchase traffic over
//! loopback against a multi-worker [`Server`], with `LOAD_DEPTH` requests
//! pipelined per connection, and report sessions/sec, requests/sec and
//! p50/p99/p999 request latency.
//!
//! ```sh
//! cargo run --release --example load_harness
//! LOAD_WORKERS=4 LOAD_CLIENTS=8 LOAD_SESSIONS=100 LOAD_DEPTH=8 \
//!     cargo run --release --example load_harness
//! ```
//!
//! The PR 8 in-process `session_service` bench (124 sessions/sec, p99
//! 14.7ms on the single-CPU build container) is the floor this serving
//! path is measured against. The harness asserts clean shutdown and zero
//! protocol errors, so CI runs it (with small knobs) as a smoke step.

use std::sync::Arc;
use std::time::Instant;

use dance::market::wire::{Reply, Request, Response};
use dance::market::{DatasetId, Server, ServerConfig, SessionManagerConfig};
use dance::prelude::*;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn marketplace() -> Arc<Marketplace> {
    let a = Table::from_rows(
        "lh_a",
        &[("lh_k", ValueType::Int), ("lh_x", ValueType::Str)],
        (0..240)
            .map(|i| vec![Value::Int(i % 12), Value::str(format!("x{}", i % 7))])
            .collect(),
    )
    .unwrap();
    let b = Table::from_rows(
        "lh_b",
        &[("lh_k", ValueType::Int), ("lh_y", ValueType::Int)],
        (0..180)
            .map(|i| vec![Value::Int(i % 12), Value::Int(i * 5 % 31)])
            .collect(),
    )
    .unwrap();
    Arc::new(Marketplace::new(vec![a, b], EntropyPricing::default()))
}

/// The mixed per-session request stream after the open: quotes dominate,
/// with a batch quote, one sample and one projection purchase mixed in —
/// the "Try Before You Buy" shape.
fn session_ops(session: u64, requests: usize) -> Vec<Request> {
    let key = AttrSet::from_names(["lh_k"]);
    let x = AttrSet::from_names(["lh_x"]);
    let y = AttrSet::from_names(["lh_y"]);
    (0..requests)
        .map(|i| match i % 8 {
            0 => Request::QuoteBatch {
                session,
                items: vec![
                    (DatasetId(0), x.clone()),
                    (DatasetId(1), y.clone()),
                    (DatasetId(0), x.clone()),
                ],
            },
            1 => Request::BuySample {
                session,
                dataset: (i % 2) as u32,
                rate: 0.2,
                key: key.clone(),
            },
            2 => Request::Execute {
                session,
                dataset: 1,
                attrs: y.clone(),
            },
            _ => Request::Quote {
                session,
                dataset: (i % 2) as u32,
                attrs: if i % 2 == 0 { x.clone() } else { y.clone() },
            },
        })
        .collect()
}

fn percentile(sorted: &[u128], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[at] as f64 / 1e6
}

fn main() {
    let workers = knob("LOAD_WORKERS", 4);
    let clients = knob("LOAD_CLIENTS", 8);
    let sessions_per_client = knob("LOAD_SESSIONS", 50);
    let depth = knob("LOAD_DEPTH", 8);
    let requests_per_session = knob("LOAD_REQUESTS", 16);

    let market = marketplace();
    let mgr = Arc::new(dance::market::SessionManager::new(
        market,
        SessionManagerConfig {
            max_sessions: clients * 2,
            ..SessionManagerConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&mgr),
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    println!(
        "load harness: {workers} workers, {clients} clients × {sessions_per_client} sessions × \
         {requests_per_session} requests, pipeline depth {depth}"
    );

    let started = Instant::now();
    // Each client thread returns its per-request latencies (ns).
    let latencies: Vec<Vec<u128>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut lat =
                        Vec::with_capacity(sessions_per_client * (requests_per_session + 2));
                    let mut c = WireClient::connect(addr).unwrap();
                    for s in 0..sessions_per_client {
                        let t0 = Instant::now();
                        let open = c
                            .call(&Request::OpenSession {
                                shopper: client as u64,
                                seed: (client * 1000 + s) as u64,
                                budget: f64::INFINITY,
                            })
                            .unwrap();
                        lat.push(t0.elapsed().as_nanos());
                        let Reply::Ok(Response::OpenSession { session, .. }) = open else {
                            panic!("client {client}: open failed: {open:?}");
                        };
                        // Pipeline the session's ops at the configured depth:
                        // keep `depth` requests in flight, one new request
                        // queued per response received.
                        let ops = session_ops(session, requests_per_session);
                        let mut in_flight: std::collections::VecDeque<Instant> =
                            std::collections::VecDeque::with_capacity(depth);
                        let mut next = 0;
                        while next < ops.len() || !in_flight.is_empty() {
                            while next < ops.len() && in_flight.len() < depth {
                                c.queue(&ops[next]);
                                in_flight.push_back(Instant::now());
                                next += 1;
                            }
                            c.flush().unwrap();
                            let (_, reply) = c.recv_reply().unwrap();
                            assert!(reply.ok().is_some(), "client {client}: fault {reply:?}");
                            lat.push(in_flight.pop_front().unwrap().elapsed().as_nanos());
                        }
                        let t0 = Instant::now();
                        let closed = c.call(&Request::CloseSession { session }).unwrap();
                        lat.push(t0.elapsed().as_nanos());
                        assert!(closed.ok().is_some(), "close failed: {closed:?}");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut all: Vec<u128> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let total_sessions = clients * sessions_per_client;
    let total_requests = all.len();
    println!(
        "  {total_sessions} sessions, {total_requests} requests in {elapsed:.2}s \
         ({:.1} sessions/sec, {:.1} requests/sec)",
        total_sessions as f64 / elapsed,
        total_requests as f64 / elapsed,
    );
    println!(
        "  request latency: p50 {:.3}ms  p99 {:.3}ms  p999 {:.3}ms",
        percentile(&all, 0.50),
        percentile(&all, 0.99),
        percentile(&all, 0.999),
    );

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0, "protocol errors during the run");
    assert_eq!(stats.rate_limited, 0);
    assert_eq!(
        stats.requests_served as usize, total_requests,
        "every request was served"
    );
    assert_eq!(stats.sessions_open, 0, "all sessions closed");
    println!(
        "  clean shutdown: {} connections, {} requests served, 0 protocol errors",
        stats.connections_accepted, stats.requests_served
    );
}
