//! TPC-H-like acquisition: run the paper's Q1/Q2/Q3 end to end and compare
//! the heuristic against the LP baseline (§6.1 protocol at example scale).
//!
//! ```sh
//! cargo run --release --example tpch_acquisition
//! ```
//!
//! `DANCE_CHAINS=N` runs every search as N parallel MCMC chains
//! (deterministic best-of-N; default 1 keeps the historical single walk and
//! byte-identical output).

use dance::core::baseline::{brute_force, BaselineConfig};
use dance::core::plan::correlation_difference;
use dance::datagen::tpch::TpchConfig;
use dance::datagen::workload::tpch_workload;
use dance::prelude::*;
use std::time::Instant;

fn main() {
    let chains: usize = std::env::var("DANCE_CHAINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    if chains > 1 {
        println!("multi-chain search: {chains} chains per request");
    }
    let workload = tpch_workload(&TpchConfig {
        scale: 0.4,
        dirty_fraction: 0.3,
        seed: 7,
    })
    .expect("generation succeeds");
    println!(
        "TPC-H-like marketplace ({} instances):",
        workload.tables.len()
    );
    for t in &workload.tables {
        println!("  {t}");
    }

    let queries = workload.queries.clone();
    let market = Marketplace::new(workload.tables, EntropyPricing::default());
    let mut dance = Dance::offline(
        &market,
        Vec::new(), // pure marketplace acquisition: no owned source instance
        DanceConfig {
            sampling_rate: 0.4,
            refine_rounds: 0,
            mcmc: McmcConfig {
                iterations: 60,
                chains,
                ..McmcConfig::default()
            },
            ..DanceConfig::default()
        },
    )
    .expect("offline phase");

    for q in &queries {
        println!(
            "\n=== {} (source {} ⇒ target {}, path length {}) ===",
            q.name, q.source_table, q.target_table, q.path_len
        );
        let request = AcquisitionRequest::new(q.source.clone(), q.target.clone());

        let t0 = Instant::now();
        let plan = dance.acquire(&market, &request).expect("search");
        let heuristic_time = t0.elapsed();
        let Some(plan) = plan else {
            println!("no plan under current constraints");
            continue;
        };
        let truth = dance
            .evaluate_true(&market, &plan.graph, &request)
            .expect("true metrics");
        println!(
            "heuristic: {} queries in {:.2?}; est CORR {:.3} → true CORR {:.3} (price {:.2})",
            plan.queries.len(),
            heuristic_time,
            plan.estimated.correlation,
            truth.corr,
            truth.price,
        );
        for sql in plan.queries.iter().map(|q| q.to_sql()) {
            println!("    {sql}");
        }

        // LP baseline: exhaustive over the same samples.
        let t0 = Instant::now();
        let scovers = dance.covers_of(&request.source_attrs);
        let tcovers = dance.covers_of(&request.target_attrs);
        let lp = brute_force(
            dance.graph(),
            dance.free_vertices(),
            &scovers,
            &tcovers,
            &request.source_attrs,
            &request.target_attrs,
            &request.constraints,
            None,
            &BaselineConfig {
                max_tree_vertices: q.path_len + 1,
                ..BaselineConfig::default()
            },
        )
        .expect("LP runs");
        let lp_time = t0.elapsed();
        match lp {
            Some(lp) => {
                let lp_true = dance
                    .evaluate_true(&market, &lp, &request)
                    .expect("true metrics");
                println!(
                    "LP optimal: CORR {:.3} in {:.2?}; correlation difference CD = {:.3}",
                    lp_true.corr,
                    lp_time,
                    correlation_difference(lp_true.corr, truth.corr),
                );
            }
            None => println!("LP found nothing (constraints)"),
        }
    }
}
