//! Marketplace exploration: inspect the join graph DANCE builds offline —
//! I-edges, candidate join attribute sets, Property 4.1 weights, prices, and
//! the quality landscape of the listed instances.
//!
//! ```sh
//! cargo run --release --example marketplace_explore
//! ```

use dance::core::landmark::LandmarkIndex;
use dance::datagen::tpce::TpceConfig;
use dance::datagen::workload::tpce_workload;
use dance::prelude::*;

fn main() {
    let workload = tpce_workload(&TpceConfig {
        scale: 0.1,
        dirty_fraction: 0.2,
        seed: 5,
    })
    .expect("generation");
    println!(
        "TPC-E-like marketplace: {} instances, {} total rows",
        workload.tables.len(),
        workload.tables.iter().map(Table::num_rows).sum::<usize>()
    );

    let market = Marketplace::new(workload.tables, EntropyPricing::default());
    let dance = Dance::offline(
        &market,
        Vec::new(),
        DanceConfig {
            sampling_rate: 0.5,
            refine_rounds: 0,
            ..DanceConfig::default()
        },
    )
    .expect("offline");
    let g = dance.graph();

    println!(
        "\njoin graph: {} I-vertices, {} I-edges (sample cost {:.2})",
        g.num_instances(),
        g.i_edges().len(),
        dance.sample_cost()
    );

    // The ten lightest I-edges (most informative join connections).
    let mut edges: Vec<_> = g.i_edges().iter().collect();
    edges.sort_by(|a, b| a.weight.total_cmp(&b.weight));
    println!("\nlightest join connections (low JI = informative):");
    for e in edges.iter().take(10) {
        println!(
            "  {} ⋈ {} on {} → weight {:.4}",
            g.meta(e.a).name,
            g.meta(e.b).name,
            e.common,
            e.weight
        );
    }

    // Candidate join sets + Property 4.1 weights for the busiest edge.
    if let Some(e) = edges.first() {
        println!(
            "\ncandidate join attribute sets for {} ⋈ {}:",
            g.meta(e.a).name,
            g.meta(e.b).name
        );
        for j in g.candidate_join_sets(e.a, e.b) {
            println!("  {} → JI {:.4}", j, g.weight(e.a, e.b, j).unwrap());
        }
    }

    // Price of each instance's full projection, estimated from samples.
    println!("\nestimated full-projection prices (top 8 by price):");
    let mut prices: Vec<(String, f64)> = (0..g.num_instances() as u32)
        .map(|v| {
            let attrs = g.meta(v).attr_set();
            (g.meta(v).name.clone(), g.price(v, &attrs).unwrap_or(0.0))
        })
        .collect();
    prices.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, p) in prices.iter().take(8) {
        println!("  {name:<20} {p:>8.3}");
    }

    // Landmark reachability: how far is everything from everything?
    let lm = LandmarkIndex::build(g, 3, 1);
    let mut reachable = 0;
    let mut total = 0;
    for u in 0..g.num_instances() as u32 {
        for v in (u + 1)..g.num_instances() as u32 {
            total += 1;
            if lm.approx_path(g, u, v).is_some() {
                reachable += 1;
            }
        }
    }
    println!("\nlandmark index: {reachable}/{total} instance pairs connected");
}
