//! Budget sensitivity (the Figure 7 protocol at example scale): sweep the
//! budget ratio and watch correlation and feasibility respond.
//!
//! ```sh
//! cargo run --release --example budget_sweep
//! ```

use dance::datagen::tpch::TpchConfig;
use dance::datagen::workload::tpch_workload;
use dance::prelude::*;

fn main() {
    let workload = tpch_workload(&TpchConfig {
        scale: 0.3,
        dirty_fraction: 0.3,
        seed: 3,
    })
    .expect("generation");
    let q = workload.query("Q2").expect("Q2 exists").clone();
    let market = Marketplace::new(workload.tables, EntropyPricing::default());
    let mut dance = Dance::offline(
        &market,
        Vec::new(),
        DanceConfig {
            sampling_rate: 0.5,
            refine_rounds: 0,
            mcmc: McmcConfig {
                iterations: 50,
                ..McmcConfig::default()
            },
            ..DanceConfig::default()
        },
    )
    .expect("offline");

    // Establish the unconstrained price as the upper bound UB, as in §6.1.
    let unconstrained = dance
        .acquire(
            &market,
            &AcquisitionRequest::new(q.source.clone(), q.target.clone()),
        )
        .expect("search")
        .expect("feasible without budget");
    let ub = unconstrained.estimated.price;
    println!("Q2 unconstrained price (UB) = {ub:.3}\n");
    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "ratio", "budget", "CORR", "price"
    );

    for ratio in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
        let budget = ratio * ub;
        let request = AcquisitionRequest::new(q.source.clone(), q.target.clone()).with_constraints(
            Constraints {
                alpha: f64::INFINITY,
                beta: 0.0,
                budget,
            },
        );
        match dance.acquire(&market, &request).expect("search") {
            Some(plan) => println!(
                "{:<8.2} {:>10.3} {:>10.3} {:>8.3}",
                ratio, budget, plan.estimated.correlation, plan.estimated.price
            ),
            None => println!("{:<8.2} {:>10.3} {:>10} {:>8}", ratio, budget, "N/A", "N/A"),
        }
    }
    println!("\nN/A rows mirror Figure 5(c): below some ratio no target graph is affordable.");
}
