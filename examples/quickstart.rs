//! Quickstart: list two datasets, buy samples, acquire a correlated join.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dance::prelude::*;

fn main() {
    // 1. The marketplace lists two instances that join on `qs_state`.
    let zip = Table::from_rows(
        "zip",
        &[("qs_zip", ValueType::Int), ("qs_state", ValueType::Int)],
        (0..400)
            .map(|i| vec![Value::Int(i % 80), Value::Int((i % 80) / 8)])
            .collect(),
    )
    .expect("well-formed table");
    let disease = Table::from_rows(
        "disease",
        &[("qs_state", ValueType::Int), ("qs_disease", ValueType::Str)],
        (0..200)
            .map(|i| vec![Value::Int(i % 10), Value::str(format!("d{}", i % 10))])
            .collect(),
    )
    .expect("well-formed table");
    let market = Marketplace::new(vec![zip, disease], EntropyPricing::default());
    println!("marketplace catalog:");
    for meta in market.catalog() {
        println!("  {}: {} ({} rows)", meta.id, meta.name, meta.num_rows);
    }

    // 2. The shopper owns DS(age, zip) and wants CORR(age, disease).
    let ds = Table::from_rows(
        "DS",
        &[("qs_age", ValueType::Int), ("qs_zip", ValueType::Int)],
        (0..300)
            .map(|i| vec![Value::Int(20 + (i % 80) / 8), Value::Int(i % 80)])
            .collect(),
    )
    .expect("well-formed table");

    // 3. Offline phase: buy correlated samples, build the join graph.
    let mut dance = Dance::offline(
        &market,
        vec![ds],
        DanceConfig {
            sampling_rate: 0.5,
            ..DanceConfig::default()
        },
    )
    .expect("offline phase");
    println!(
        "\noffline: {} instances in join graph, {} I-edges, samples cost {:.3}",
        dance.graph().num_instances(),
        dance.graph().i_edges().len(),
        dance.sample_cost()
    );

    // 4. Online phase: acquisition request with a real budget.
    let request = AcquisitionRequest::new(
        AttrSet::from_names(["qs_age"]),
        AttrSet::from_names(["qs_disease"]),
    )
    .with_constraints(Constraints {
        alpha: 2.0,
        beta: 0.5,
        budget: 50.0,
    });
    let plan = dance
        .acquire(&market, &request)
        .expect("search runs")
        .expect("a plan exists under these constraints");

    println!("\nrecommended purchase:");
    for q in &plan.queries {
        println!("  {}", q.to_sql());
    }
    println!(
        "estimated: CORR = {:.3}, quality = {:.3}, JI weight = {:.3}, price = {:.3}",
        plan.estimated.correlation,
        plan.estimated.quality,
        plan.estimated.join_informativeness,
        plan.estimated.price
    );

    // 5. Execute the purchase under a budget.
    let mut budget = Budget::new(request.constraints.budget);
    let tables = dance
        .purchase(&market, &plan, &mut budget)
        .expect("plan fits the budget");
    println!(
        "\npurchased {} projections for {:.3} ({} remaining); marketplace revenue {:.3}",
        tables.len(),
        budget.spent(),
        budget.remaining(),
        market.revenue()
    );
    for t in &tables {
        println!("  {}", t);
    }
}
