//! The acquisition-session service end to end: a handful of shopper
//! sessions run concurrently against one shared marketplace — each with its
//! own budget, ledger, seed, and pinned catalog version — while a seller
//! publishes an update mid-run. Shows capacity rejection, version pinning
//! vs. explicit repin, budget isolation, and the ledger/revenue
//! reconciliation the service guarantees bitwise.
//!
//! ```sh
//! cargo run --release --example session_service
//! ```

use std::sync::{Arc, Barrier};

use dance::datagen::churn::churn_delta;
use dance::datagen::tpce::TpceConfig;
use dance::datagen::workload::tpce_workload;
use dance::market::{DatasetId, SessionError};
use dance::prelude::*;

fn main() {
    let workload = tpce_workload(&TpceConfig {
        scale: 0.1,
        dirty_fraction: 0.2,
        seed: 5,
    })
    .expect("generation");
    let market = Arc::new(Marketplace::new(workload.tables, EntropyPricing::default()));
    let mgr = SessionManager::new(
        Arc::clone(&market),
        SessionManagerConfig {
            max_sessions: 3,
            ..SessionManagerConfig::default()
        },
    );
    println!(
        "marketplace: {} instances at catalog v{}, capacity {} sessions",
        market.catalog().len(),
        market.catalog_version(),
        3
    );

    // --- Three concurrent shopper sessions, each on its own thread. Every
    // session pins the catalog version it opened at; purchases are seeded
    // from (session seed, purchase index), so each report is reproducible
    // from its config alone no matter how the threads interleave.
    // Two barriers keep the story deterministic: all three sessions are open
    // before the fourth shopper knocks, and none closes until it has been
    // turned away.
    let all_open = Barrier::new(4);
    let turned_away = Barrier::new(4);
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|s| {
                let (mgr, all_open, turned_away) = (&mgr, &all_open, &turned_away);
                scope.spawn(move || {
                    let mut session = mgr
                        .open(SessionConfig {
                            budget: 40.0,
                            seed: 0xDA2CE + s,
                        })
                        .expect("under capacity");
                    all_open.wait();
                    turned_away.wait();
                    let meta = session.meta(DatasetId(s as u32)).unwrap().clone();
                    session
                        .buy_sample(meta.id, &meta.default_key, 0.3)
                        .expect("sample fits the budget");
                    let attrs = AttrSet::singleton(meta.schema.attributes()[0].id);
                    let quoted = session.quote(meta.id, &attrs).unwrap();
                    let (_, paid) = session
                        .execute(&ProjectionQuery {
                            dataset: meta.id,
                            dataset_name: meta.name.clone(),
                            attrs,
                        })
                        .expect("projection fits the budget");
                    assert_eq!(quoted.to_bits(), paid.to_bits(), "quotes are binding");
                    mgr.close(session)
                })
            })
            .collect();

        // A fourth shopper is rejected gracefully while all slots are taken.
        all_open.wait();
        match mgr.open(SessionConfig::default()) {
            Err(SessionError::AtCapacity { open, max }) => {
                println!("fourth shopper rejected gracefully: {open}/{max} sessions open")
            }
            Ok(_) => panic!("expected a capacity rejection"),
            Err(e) => panic!("unexpected error: {e}"),
        }
        turned_away.wait();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &reports {
        println!(
            "  {}: pinned v{}, {} purchases, spent {:.4} ({:.4} left)",
            r.id,
            r.catalog_version,
            r.purchases.len(),
            r.spent,
            r.remaining
        );
    }

    // --- Ledgers reconcile with marketplace revenue exactly (bitwise): the
    // marketplace stripes revenue per session and folds in session order.
    let total: f64 = {
        let mut by_id = reports.clone();
        by_id.sort_by_key(|r| r.id);
        by_id.iter().fold(0.0, |acc, r| acc + r.spent)
    };
    assert_eq!(total.to_bits(), market.revenue().to_bits());
    println!("Σ session ledgers == revenue == {:.4}", market.revenue());

    // --- A seller update lands; an already-open session keeps shopping at
    // its pinned version until it explicitly repins.
    let mut session = mgr
        .open(SessionConfig::default())
        .expect("slots free again");
    let before = session.pinned_version();
    let biggest = market
        .catalog()
        .into_iter()
        .max_by_key(|m| m.num_rows)
        .unwrap()
        .id;
    let base = market.full_table_for_evaluation(biggest).unwrap();
    let delta = churn_delta(&base, 0.10, 0.02, 9);
    market.apply_update(biggest, &delta).expect("update");
    assert_eq!(session.pinned_version(), before, "pins survive updates");
    let pinned_rows = session.meta(biggest).unwrap().num_rows;
    let repinned = session.repin();
    let fresh_rows = session.meta(biggest).unwrap().num_rows;
    println!(
        "seller update: catalog v{before} -> v{repinned}; \
         session saw {pinned_rows} rows pinned, {fresh_rows} after repin"
    );
    mgr.close(session);

    let stats = mgr.stats();
    println!(
        "service stats: opened {}, closed {}, rejected {}, peak open {}",
        stats.opened, stats.closed, stats.rejected, stats.peak_open
    );
}
