//! The paper's running example (§1, Table 1): Adam buys health data.
//!
//! Adam owns `DS(age, zipcode, population)` and wants the correlation between
//! age groups and diseases in NJ. The marketplace lists D1–D5, including
//! D1's FD violation and D5's individual records. On the full catalog DANCE
//! picks D5 — it carries both attributes directly and cheaply (Definition 2.4
//! cannot see the aggregation-vs-individual mismatch the paper's §2.3 prose
//! warns about). With D5 delisted, DANCE falls back to one of the multi-
//! instance options of Example 1.1 (joining D3 ⋈ D4 on gender/race, or the
//! DS ⋈ D1 ⋈ D2 route).
//!
//! ```sh
//! cargo run --example health_scenario
//! ```

use dance::datagen::scenario;
use dance::prelude::*;

fn main() {
    let ds = scenario::source_ds();
    println!("Adam's source instance:\n{}", ds.pretty(10));

    let market = Marketplace::new(scenario::marketplace_tables(), EntropyPricing::default());
    println!("marketplace instances:");
    for meta in market.catalog() {
        println!(
            "  {}: {} ({} rows, attrs {})",
            meta.id,
            meta.name,
            meta.num_rows,
            meta.attr_set()
        );
    }

    // Check D1's data quality issue from the paper (Zipcode → State).
    let d1 = scenario::d1_zipcode();
    let fd = Fd::new(["zipcode"], "state");
    let q = dance::quality::quality(&d1, &fd).expect("fd applies");
    println!("\nQ(D1, zipcode→state) = {q:.2} (one record violates the FD)");

    // Offline with full-rate samples — the toy tables are tiny.
    let mut dance = Dance::offline(
        &market,
        vec![ds],
        DanceConfig {
            sampling_rate: 1.0,
            refine_rounds: 0,
            mcmc: McmcConfig {
                iterations: 80,
                resample: None,
                ..McmcConfig::default()
            },
            ..DanceConfig::default()
        },
    )
    .expect("offline");

    let request = AcquisitionRequest::new(
        AttrSet::from_names(["age"]),
        AttrSet::from_names(["disease"]),
    );
    let plan = dance
        .acquire(&market, &request)
        .expect("search")
        .expect("the scenario has valid acquisition routes");

    println!("\nDANCE recommends:");
    for q in &plan.queries {
        println!("  {}", q.to_sql());
    }
    println!(
        "estimated: CORR(age, disease) = {:.3}, quality = {:.3}, JI = {:.3}, price = {:.3}",
        plan.estimated.correlation,
        plan.estimated.quality,
        plan.estimated.join_informativeness,
        plan.estimated.price,
    );

    let truth = dance
        .evaluate_true(&market, &plan.graph, &request)
        .expect("true evaluation");
    println!(
        "ground truth on full data: CORR = {:.3}, quality = {:.3}, price = {:.3}",
        truth.corr, truth.quality, truth.price
    );

    // Without D5, the only route is the paper's Option 1: DS ⋈ D1 ⋈ D2.
    let market2 = Marketplace::new(
        vec![
            scenario::d1_zipcode(),
            scenario::d2_disease_by_state(),
            scenario::d3_disease_nj(),
            scenario::d4_census_nj(),
        ],
        EntropyPricing::default(),
    );
    let mut dance2 = Dance::offline(
        &market2,
        vec![scenario::source_ds()],
        DanceConfig {
            sampling_rate: 1.0,
            refine_rounds: 0,
            mcmc: McmcConfig {
                iterations: 80,
                resample: None,
                ..McmcConfig::default()
            },
            ..DanceConfig::default()
        },
    )
    .expect("offline");
    let plan2 = dance2
        .acquire(&market2, &request)
        .expect("search")
        .expect("Option 1 exists");
    println!("\nwith D5 delisted, DANCE falls back to a multi-instance option:");
    for q in &plan2.queries {
        println!("  {}", q.to_sql());
    }
    println!(
        "estimated: CORR = {:.3}, quality = {:.3}, JI = {:.3}, price = {:.3}",
        plan2.estimated.correlation,
        plan2.estimated.quality,
        plan2.estimated.join_informativeness,
        plan2.estimated.price,
    );
}
