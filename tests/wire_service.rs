//! End-to-end determinism and robustness of the wire serving layer.
//!
//! The contract under test: a session served over the socket protocol is
//! the *same pure function* as a session run in-process — its wire-level
//! response transcript is **byte-identical** to re-encoding the responses
//! an in-process replay produces against the pinned snapshot, even with 8
//! clients hammering the server concurrently and a seller update landing
//! mid-run. Run under `DANCE_THREADS=1` and `=4` in CI.

use std::sync::{Arc, Barrier};

use dance::market::wire::{self, Reply, Request, Response};
use dance::market::{
    CatalogSnapshot, DatasetId, FaultCode, RateLimit, Server, ServerConfig, SessionManager,
    SessionManagerConfig, WireClient,
};
use dance::prelude::*;
use dance::relation::TableDelta;

fn marketplace() -> Arc<Marketplace> {
    let a = Table::from_rows(
        "ws_a",
        &[("ws_k", ValueType::Int), ("ws_x", ValueType::Str)],
        (0..120)
            .map(|i| vec![Value::Int(i % 8), Value::str(format!("x{}", i % 5))])
            .collect(),
    )
    .unwrap();
    let b = Table::from_rows(
        "ws_b",
        &[("ws_k", ValueType::Int), ("ws_y", ValueType::Int)],
        (0..90)
            .map(|i| vec![Value::Int(i % 8), Value::Int(i * 7 % 23)])
            .collect(),
    )
    .unwrap();
    Arc::new(Marketplace::new(vec![a, b], EntropyPricing::default()))
}

/// The deterministic call sequence every client runs: quotes (single and
/// batched, with a duplicate answered from the batch memo), two seeded
/// sample purchases, a projection purchase, then close.
fn shopping_ops() -> Vec<Request> {
    let key = AttrSet::from_names(["ws_k"]);
    let x = AttrSet::from_names(["ws_x"]);
    let y = AttrSet::from_names(["ws_y"]);
    vec![
        Request::QuoteBatch {
            session: 0, // patched with the real session id
            items: vec![
                (DatasetId(0), x.clone()),
                (DatasetId(1), y.clone()),
                (DatasetId(0), x.clone()),
            ],
        },
        Request::Quote {
            session: 0,
            dataset: 1,
            attrs: y.clone(),
        },
        Request::BuySample {
            session: 0,
            dataset: 0,
            rate: 0.3,
            key: key.clone(),
        },
        Request::Execute {
            session: 0,
            dataset: 1,
            attrs: y,
        },
        Request::BuySample {
            session: 0,
            dataset: 1,
            rate: 0.5,
            key,
        },
    ]
}

fn patch_session(req: &Request, session: u64) -> Request {
    let mut r = req.clone();
    match &mut r {
        Request::Quote { session: s, .. }
        | Request::QuoteBatch { session: s, .. }
        | Request::BuySample { session: s, .. }
        | Request::Execute { session: s, .. }
        | Request::Repin { session: s }
        | Request::CloseSession { session: s } => *s = session,
        Request::OpenSession { .. }
        | Request::Stats
        | Request::Hello { .. }
        | Request::Resume { .. } => {}
    }
    r
}

/// What one wire client brings home: its transcript and enough identity to
/// replay it.
struct ClientRun {
    client: usize,
    wire_session: u64,
    pinned_version: u64,
    spent: f64,
    transcript: Vec<u8>,
}

/// Drive one full session over the wire with pipelining: open (awaited, to
/// learn the session id), then every shopping op queued as one in-flight
/// batch (depth = ops), then close (awaited).
fn run_wire_client(addr: std::net::SocketAddr, client: usize, seed: u64) -> ClientRun {
    let mut c = WireClient::recording(addr).unwrap();
    let open = c
        .call(&Request::OpenSession {
            shopper: client as u64,
            seed,
            budget: 1e6,
        })
        .unwrap();
    let Reply::Ok(Response::OpenSession {
        session,
        version: pinned_version,
        ..
    }) = open
    else {
        panic!("client {client}: expected open, got {open:?}");
    };
    let ops = shopping_ops();
    let ids: Vec<u64> = ops
        .iter()
        .map(|op| c.queue(&patch_session(op, session)))
        .collect();
    c.flush().unwrap();
    for want in ids {
        let (got, reply) = c.recv_reply().unwrap();
        assert_eq!(got, want, "pipelined responses arrive in request order");
        assert!(reply.ok().is_some(), "client {client}: fault {reply:?}");
    }
    let closed = c.call(&Request::CloseSession { session }).unwrap();
    let Reply::Ok(Response::CloseSession { spent, .. }) = closed else {
        panic!("client {client}: expected close, got {closed:?}");
    };
    ClientRun {
        client,
        wire_session: session,
        pinned_version,
        spent,
        transcript: c.transcript().to_vec(),
    }
}

/// Replay one client's calls in-process against the pinned snapshot and
/// re-encode the responses it *should* have seen. Request ids per connection
/// are deterministic (1, 2, 3…), so the whole expected transcript is a pure
/// function of `(snapshot, seed, wire session id)`.
fn replay_transcript(mgr: &SessionManager, run: &ClientRun, snapshot: CatalogSnapshot) -> Vec<u8> {
    assert_eq!(snapshot.version(), run.pinned_version);
    let mut session = mgr
        .open_at(
            SessionConfig {
                budget: 1e6,
                seed: 0xC0FFEE + run.client as u64,
            },
            snapshot,
        )
        .unwrap();
    let mut expected = Vec::new();
    let mut next_id = 1u64;
    let push = |op: wire::Opcode, resp: Response, expected: &mut Vec<u8>, next_id: &mut u64| {
        wire::encode_reply(expected, *next_id, op as u16, &Reply::Ok(resp));
        *next_id += 1;
    };
    push(
        wire::Opcode::OpenSession,
        Response::OpenSession {
            session: run.wire_session,
            version: session.pinned_version(),
            token: 0,
        },
        &mut expected,
        &mut next_id,
    );
    for op in shopping_ops() {
        let resp = match op {
            Request::QuoteBatch { items, .. } => Response::QuoteBatch {
                prices: session.quote_batch(&items).unwrap(),
            },
            Request::Quote { dataset, attrs, .. } => Response::Quote {
                price: session.quote(DatasetId(dataset), &attrs).unwrap(),
            },
            Request::BuySample {
                dataset, rate, key, ..
            } => {
                let (table, price) = session.buy_sample(DatasetId(dataset), &key, rate).unwrap();
                Response::BuySample {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }
            }
            Request::Execute { dataset, attrs, .. } => {
                let (table, price) = session.execute_by_id(DatasetId(dataset), &attrs).unwrap();
                Response::Execute {
                    price,
                    rows: table.num_rows() as u64,
                    digest: wire::table_digest(&table),
                }
            }
            other => panic!("unexpected op {other:?}"),
        };
        let opcode = match &resp {
            Response::QuoteBatch { .. } => wire::Opcode::QuoteBatch,
            Response::Quote { .. } => wire::Opcode::Quote,
            Response::BuySample { .. } => wire::Opcode::BuySample,
            Response::Execute { .. } => wire::Opcode::Execute,
            _ => unreachable!(),
        };
        push(opcode, resp, &mut expected, &mut next_id);
    }
    let report = mgr.close(session);
    push(
        wire::Opcode::CloseSession,
        Response::CloseSession {
            seed: report.seed,
            version: report.catalog_version,
            purchases: report.purchases.len() as u32,
            spent: report.spent,
            remaining: report.remaining,
        },
        &mut expected,
        &mut next_id,
    );
    expected
}

/// The tentpole pin: 8 concurrent wire clients, a seller update mid-run,
/// transcripts byte-identical to in-process replays at the pinned version,
/// and Σ session spends == marketplace revenue bitwise.
#[test]
fn eight_wire_clients_update_midrun_transcripts_replay_bitwise() {
    let market = marketplace();
    let mgr = Arc::new(SessionManager::new(
        Arc::clone(&market),
        SessionManagerConfig {
            max_sessions: 64,
            ..SessionManagerConfig::default()
        },
    ));
    let server = Server::start(Arc::clone(&mgr), ServerConfig::default()).unwrap();
    let addr = server.addr();
    let snapshot_v0 = market.snapshot();

    // Clients 0–3 open (pinning v0) before the seller update; clients 4–7
    // open after it (pinning v1). Two barriers sequence the three parties.
    let opened_v0 = Barrier::new(5);
    let updated = Barrier::new(9);
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let (opened_v0, updated) = (&opened_v0, &updated);
                scope.spawn(move || {
                    let seed = 0xC0FFEE + client as u64;
                    if client < 4 {
                        let mut c = WireClient::recording(addr).unwrap();
                        let open = c
                            .call(&Request::OpenSession {
                                shopper: client as u64,
                                seed,
                                budget: 1e6,
                            })
                            .unwrap();
                        let Reply::Ok(Response::OpenSession {
                            session, version, ..
                        }) = open
                        else {
                            panic!("expected open, got {open:?}");
                        };
                        assert_eq!(version, 0, "pre-update clients pin v0");
                        opened_v0.wait();
                        updated.wait();
                        // Shop *after* the update landed: the pin must hold.
                        let ops = shopping_ops();
                        let ids: Vec<u64> = ops
                            .iter()
                            .map(|op| c.queue(&patch_session(op, session)))
                            .collect();
                        c.flush().unwrap();
                        for want in ids {
                            let (got, reply) = c.recv_reply().unwrap();
                            assert_eq!(got, want);
                            assert!(reply.ok().is_some(), "fault: {reply:?}");
                        }
                        let closed = c.call(&Request::CloseSession { session }).unwrap();
                        let Reply::Ok(Response::CloseSession { spent, .. }) = closed else {
                            panic!("expected close, got {closed:?}");
                        };
                        ClientRun {
                            client,
                            wire_session: session,
                            pinned_version: 0,
                            spent,
                            transcript: c.transcript().to_vec(),
                        }
                    } else {
                        updated.wait();
                        let run = run_wire_client(addr, client, seed);
                        assert_eq!(run.pinned_version, 1, "post-update clients pin v1");
                        run
                    }
                })
            })
            .collect();

        opened_v0.wait();
        // The seller update: delete 40 rows of ws_a while four sessions are
        // open at v0 and four more are about to open at v1.
        let delta = TableDelta::new(Vec::new(), (0..40).collect());
        market.apply_update(DatasetId(0), &delta).unwrap();
        updated.wait();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let snapshot_v1 = market.snapshot();
    assert_eq!(snapshot_v1.version(), 1);

    // Σ session spends (folded in session-id order, matching the
    // marketplace's per-stripe fold) == revenue(), bitwise. Checked before
    // the replays below add their own revenue stripes.
    let mut by_sid: Vec<&ClientRun> = runs.iter().collect();
    by_sid.sort_by_key(|r| r.wire_session);
    let total = by_sid.iter().fold(0.0f64, |acc, r| acc + r.spent);
    assert_eq!(
        total.to_bits(),
        market.revenue().to_bits(),
        "Σ wire-session ledgers reconcile with marketplace revenue bitwise"
    );

    // Byte-identical transcripts: replay every client in-process against its
    // pinned snapshot and compare raw response bytes.
    for run in &runs {
        let snapshot = if run.pinned_version == 0 {
            snapshot_v0.clone()
        } else {
            snapshot_v1.clone()
        };
        let expected = replay_transcript(&mgr, run, snapshot);
        assert_eq!(
            expected, run.transcript,
            "client {} (wire session {}, pinned v{}): transcript differs from in-process replay",
            run.client, run.wire_session, run.pinned_version
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.requests_served, 8 * 7);
    assert_eq!(stats.sessions_opened as usize, 8 + 8); // 8 wire + 8 replays
}

/// Rate-limited shoppers get `Rejected` frames, not hangs — and the limit
/// is per shopper, so a well-behaved shopper on the same server is
/// untouched.
#[test]
fn rate_limited_clients_get_rejected_frames_not_hangs() {
    let market = marketplace();
    let mgr = Arc::new(SessionManager::new(
        market,
        SessionManagerConfig {
            max_sessions: 64,
            ..SessionManagerConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&mgr),
        ServerConfig {
            rate_limit: Some(RateLimit {
                per_sec: 0.0001,
                burst: 4.0,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let results: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|shopper| {
                scope.spawn(move || {
                    let mut c = WireClient::connect(addr).unwrap();
                    let open = c
                        .call(&Request::OpenSession {
                            shopper,
                            seed: 1,
                            budget: 1e6,
                        })
                        .unwrap();
                    let Reply::Ok(Response::OpenSession { session, .. }) = open else {
                        panic!("expected open, got {open:?}");
                    };
                    let attrs = AttrSet::from_names(["ws_x"]);
                    let (mut ok, mut rejected) = (0usize, 0usize);
                    // 10 quotes against a burst of 4 (one token went to the
                    // open): every request gets an answer, over-limit ones a
                    // Rejected fault.
                    for _ in 0..10 {
                        let reply = c
                            .call(&Request::Quote {
                                session,
                                dataset: 0,
                                attrs: attrs.clone(),
                            })
                            .unwrap();
                        match reply {
                            Reply::Ok(_) => ok += 1,
                            Reply::Fault(f) => {
                                assert_eq!(f.code, FaultCode::Rejected, "unexpected {f}");
                                rejected += 1;
                            }
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (shopper, (ok, rejected)) in results.iter().enumerate() {
        assert_eq!(
            ok + rejected,
            10,
            "shopper {shopper}: every request answered"
        );
        assert_eq!(
            *ok, 3,
            "shopper {shopper}: burst admits 3 quotes after open"
        );
        assert_eq!(*rejected, 7);
    }
    let stats = server.shutdown();
    assert_eq!(stats.rate_limited, 14);
    assert_eq!(stats.protocol_errors, 0);
}
