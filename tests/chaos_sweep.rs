//! Chaos-seed sweep: the serving layer's determinism contract under a
//! hostile network.
//!
//! For every pinned seed × fault class, a fleet of concurrent resilient
//! clients (bounded retries, reconnect-and-resume) runs a fixed shopping
//! script against the server while a seeded [`ChaosConfig`] injects
//! connection resets, mid-frame truncations, short writes and delays —
//! client-side in most scenarios, server-side in the last. The contract:
//!
//! * every client's **logical reply transcript is byte-identical** to the
//!   fault-free baseline run (retries, reconnects and session resumption
//!   are invisible at the request/reply level);
//! * **no double-charge**: per-session spend and the marketplace revenue
//!   fold match the baseline bitwise — retried `BuySample`/`Execute`
//!   frames are answered from the replay cache, not re-executed;
//! * **no slot leak**: after every client closes its session, the service
//!   reports zero open sessions, however many connections died mid-run.
//!
//! Run under `DANCE_THREADS=1` and `=4` in CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dance::market::{
    ChaosConfig, EntropyPricing, Marketplace, RetryPolicy, Server, ServerConfig, SessionManager,
    SessionManagerConfig, StatsSnapshot, WireClient,
};
use dance::market::{DatasetId, Reply, Request, Response};
use dance::relation::{AttrSet, Table, Value, ValueType};

/// Concurrent clients per run.
const CLIENTS: usize = 4;

/// Master chaos seeds swept per fault class.
const SEEDS: [u64; 3] = [7, 42, 0xC0FFEE];

fn marketplace() -> Arc<Marketplace> {
    let a = Table::from_rows(
        "cs_a",
        &[("cs_k", ValueType::Int), ("cs_x", ValueType::Str)],
        (0..96)
            .map(|i| vec![Value::Int(i % 7), Value::str(format!("x{}", i % 5))])
            .collect(),
    )
    .unwrap();
    let b = Table::from_rows(
        "cs_b",
        &[("cs_k", ValueType::Int), ("cs_y", ValueType::Int)],
        (0..80)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i * 11 % 19)])
            .collect(),
    )
    .unwrap();
    Arc::new(Marketplace::new(vec![a, b], EntropyPricing::default()))
}

fn service() -> Arc<SessionManager> {
    Arc::new(SessionManager::new(
        marketplace(),
        SessionManagerConfig {
            max_sessions: CLIENTS,
            // Parked sessions stay resumable for the whole test; the pinned
            // secret makes tokens a pure function of the session id, so
            // open replies are byte-comparable across runs.
            lease_secs: Some(30.0),
            token_secret: Some((0xC0A5_0001, 0x1E55_0002)),
        },
    ))
}

/// The fixed script every client runs after its `OpenSession` (logical
/// request ids 2..=7 on every run, however many retries it takes).
fn shopping_ops(session: u64) -> Vec<Request> {
    let x = AttrSet::from_names(["cs_x"]);
    let y = AttrSet::from_names(["cs_y"]);
    let k = AttrSet::from_names(["cs_k"]);
    vec![
        Request::Quote {
            session,
            dataset: 0,
            attrs: x.clone(),
        },
        Request::QuoteBatch {
            session,
            items: vec![
                (DatasetId(0), x),
                (DatasetId(1), y.clone()),
                (DatasetId(0), k.clone()),
            ],
        },
        Request::BuySample {
            session,
            dataset: 0,
            rate: 0.5,
            key: k.clone(),
        },
        Request::BuySample {
            session,
            dataset: 1,
            rate: 0.25,
            key: k,
        },
        Request::Execute {
            session,
            dataset: 1,
            attrs: y,
        },
        Request::CloseSession { session },
    ]
}

/// What one client brings home from a run.
struct Outcome {
    session: u64,
    transcript: Vec<u8>,
    spent: f64,
    reconnects: u64,
}

/// Run the full fleet: `CLIENTS` threads, opens turnstiled into client
/// order (so session ids — and with the pinned secret, tokens — are a pure
/// function of the client index), then the shopping script driven
/// concurrently. Returns per-client outcomes, final server stats and the
/// marketplace revenue.
fn run_fleet(
    server_chaos: Option<ChaosConfig>,
    client_chaos: Option<ChaosConfig>,
) -> (Vec<Outcome>, StatsSnapshot, f64) {
    let mgr = service();
    let server = Server::start(
        Arc::clone(&mgr),
        ServerConfig {
            chaos: server_chaos,
            io_deadline: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let turn = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let turn = Arc::clone(&turn);
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    attempts: 12,
                    op_timeout: Duration::from_millis(800),
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(40),
                    seed: 0x5EED ^ c as u64,
                };
                let mut builder = WireClient::builder(addr).recording().retry(policy);
                if let Some(cfg) = client_chaos {
                    builder = builder.chaos(cfg.derive(c as u64));
                }
                let mut client = builder.connect().unwrap();
                // Turnstile: session ids are handed out in client order on
                // every run, chaotic or not. `call` returns only once the
                // open (retried as needed) has succeeded, so the slot is
                // assigned before the next client proceeds.
                while turn.load(Ordering::Acquire) != c {
                    std::thread::yield_now();
                }
                let open = client
                    .call(&Request::OpenSession {
                        shopper: c as u64,
                        seed: 1000 + c as u64,
                        budget: 100.0,
                    })
                    .unwrap();
                turn.store(c + 1, Ordering::Release);
                let Reply::Ok(Response::OpenSession { session, .. }) = open else {
                    panic!("client {c}: expected open, got {open:?}");
                };

                let mut spent = 0.0f64;
                for op in shopping_ops(session) {
                    let reply = client.call(&op).unwrap();
                    match reply {
                        Reply::Ok(Response::CloseSession {
                            purchases,
                            spent: s,
                            ..
                        }) => {
                            assert_eq!(purchases, 3, "client {c}: two samples + one projection");
                            spent = s;
                        }
                        Reply::Ok(_) => {}
                        Reply::Fault(f) => panic!("client {c}: fault on {op:?}: {f}"),
                    }
                }
                Outcome {
                    session,
                    transcript: client.transcript().to_vec(),
                    spent,
                    reconnects: client.reconnects(),
                }
            })
        })
        .collect();

    let mut outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    outcomes.sort_by_key(|o| o.session);
    let revenue = mgr.market().revenue();
    let stats = server.shutdown();
    (outcomes, stats, revenue)
}

/// Assert one chaos run reproduced the baseline bit-for-bit.
fn assert_matches_baseline(
    label: &str,
    baseline: &[Outcome],
    run: &[Outcome],
    revenue0: f64,
    revenue: f64,
) {
    assert_eq!(run.len(), baseline.len());
    for (b, r) in baseline.iter().zip(run) {
        assert_eq!(r.session, b.session, "{label}: session ids are turnstiled");
        assert_eq!(
            r.transcript, b.transcript,
            "{label}: session {} logical transcript must be byte-identical to fault-free",
            b.session
        );
        assert_eq!(
            r.spent.to_bits(),
            b.spent.to_bits(),
            "{label}: session {} spend drifted (double charge?)",
            b.session
        );
    }
    assert_eq!(
        revenue.to_bits(),
        revenue0.to_bits(),
        "{label}: marketplace revenue drifted from the fault-free fold"
    );
    // Σ session spends (in session-id order, matching the revenue fold)
    // == revenue, bitwise: nothing was charged outside the transcripts.
    let total = run.iter().fold(0.0f64, |acc, o| acc + o.spent);
    assert_eq!(
        total.to_bits(),
        revenue.to_bits(),
        "{label}: Σ ledgers != revenue"
    );
}

#[test]
fn chaos_sweep_matches_fault_free_baseline_bitwise() {
    let (baseline, stats0, revenue0) = run_fleet(None, None);
    assert_eq!(stats0.sessions_open, 0);
    assert_eq!(
        stats0.resumes + stats0.replay_hits,
        0,
        "baseline saw no faults"
    );
    for o in &baseline {
        assert_eq!(o.reconnects, 0, "baseline saw no reconnects");
    }

    // (label, per-class rates); `seed` is patched per sweep iteration.
    let classes: [(&str, ChaosConfig); 4] = [
        (
            "resets",
            ChaosConfig {
                reset_rate: 0.02,
                ..ChaosConfig::quiet(0)
            },
        ),
        (
            "truncations",
            ChaosConfig {
                truncate_rate: 0.04,
                ..ChaosConfig::quiet(0)
            },
        ),
        (
            "fragmentation+delays",
            ChaosConfig {
                short_write_rate: 0.25,
                delay_rate: 0.10,
                max_delay_ms: 2,
                ..ChaosConfig::quiet(0)
            },
        ),
        ("hostile", ChaosConfig::hostile(0)),
    ];

    let mut faulted_runs = 0u32;
    for (name, class) in classes {
        for seed in SEEDS {
            let cfg = ChaosConfig { seed, ..class };
            let label = format!("client-chaos {name} seed {seed:#x}");
            let (run, stats, revenue) = run_fleet(None, Some(cfg));
            assert_matches_baseline(&label, &baseline, &run, revenue0, revenue);
            assert_eq!(stats.sessions_open, 0, "{label}: leaked a session slot");
            faulted_runs += u32::from(run.iter().any(|o| o.reconnects > 0));
        }
    }
    // The sweep must actually exercise the resilience path, not vacuously
    // pass because the rates rounded to nothing.
    assert!(
        faulted_runs >= SEEDS.len() as u32,
        "sweep too quiet: only {faulted_runs} runs saw a reconnect"
    );
}

#[test]
fn server_side_chaos_matches_fault_free_baseline_bitwise() {
    let (baseline, _, revenue0) = run_fleet(None, None);
    for seed in SEEDS {
        let cfg = ChaosConfig::hostile(seed);
        let label = format!("server-chaos hostile seed {seed:#x}");
        let (run, stats, revenue) = run_fleet(Some(cfg), None);
        assert_matches_baseline(&label, &baseline, &run, revenue0, revenue);
        assert_eq!(stats.sessions_open, 0, "{label}: leaked a session slot");
    }
}
