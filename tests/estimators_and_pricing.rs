//! Cross-crate statistical and economic invariants:
//! * Theorem 3.1/3.2-style estimator concentration on generated workloads.
//! * Arbitrage-freedom of marketplace quotes end to end.
//! * Property-based checks tying sampling, pricing and info measures together.

use dance::datagen::tpch::{tpch, TpchConfig};
use dance::info::join_informativeness;
use dance::prelude::*;
use dance::sampling::estimate_ji;
use proptest::prelude::*;

fn tables() -> Vec<Table> {
    tpch(&TpchConfig {
        scale: 0.3,
        dirty_fraction: 0.3,
        seed: 21,
    })
    .unwrap()
}

fn by_name<'a>(ts: &'a [Table], n: &str) -> &'a Table {
    ts.iter().find(|t| t.name() == n).unwrap()
}

/// Theorem 3.1 on a generated FK pair: the sampled JI concentrates on the
/// exact JI as the rate grows.
#[test]
fn ji_estimator_concentrates_with_rate() {
    let ts = tables();
    let orders = by_name(&ts, "orders");
    let customer = by_name(&ts, "customer");
    let on = AttrSet::from_names(["custkey"]);
    let truth = join_informativeness(orders, customer, &on).unwrap();

    let mean_err = |rate: f64| {
        let mut e = 0.0;
        for seed in 0..10 {
            e += (estimate_ji(orders, customer, &on, rate, seed).unwrap() - truth).abs();
        }
        e / 10.0
    };
    let e_low = mean_err(0.2);
    let e_high = mean_err(0.8);
    assert!(
        e_high < e_low,
        "error should shrink with rate: 0.2 → {e_low}, 0.8 → {e_high}"
    );
    assert!(e_high < 0.05, "high-rate error small: {e_high}");
}

/// Marketplace quotes inherit entropy pricing's arbitrage-freedom: splitting
/// a projection query into two cannot be cheaper.
#[test]
fn marketplace_quotes_are_arbitrage_free() {
    let ts = tables();
    let market = Marketplace::new(ts, EntropyPricing::default());
    let id = dance::market::DatasetId(3); // customer
    let full = AttrSet::from_names(["c_city", "c_state", "c_mktsegment"]);
    let part_a = AttrSet::from_names(["c_city"]);
    let part_b = AttrSet::from_names(["c_state", "c_mktsegment"]);
    let p_full = market.quote(id, &full).unwrap();
    let p_a = market.quote(id, &part_a).unwrap();
    let p_b = market.quote(id, &part_b).unwrap();
    assert!(
        p_full <= p_a + p_b + 1e-9,
        "splitting must not be cheaper: {p_full} > {p_a} + {p_b}"
    );
    assert!(p_full >= p_a - 1e-9, "monotonicity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Correlated samples of any rate keep key groups intact: every surviving
    /// custkey keeps all its order rows.
    #[test]
    fn correlated_sampling_preserves_key_groups(rate in 0.05f64..0.95, seed in 0u64..50) {
        let ts = tables();
        let orders = by_name(&ts, "orders");
        let on = AttrSet::from_names(["custkey"]);
        let sampler = CorrelatedSampler::new(rate, seed);
        let sample = sampler.sample(orders, &on).unwrap();
        let full_counts = dance::relation::value_counts(orders, &on).unwrap();
        let sample_counts = dance::relation::value_counts(&sample, &on).unwrap();
        for (k, c) in &sample_counts {
            prop_assert_eq!(full_counts[k], *c, "key survived partially");
        }
    }

    /// JI of any candidate join attribute pair stays in \[0, 1\] on generated
    /// dirty data.
    #[test]
    fn ji_bounded_on_generated_pairs(seed in 0u64..20) {
        let ts = tpch(&TpchConfig { scale: 0.15, dirty_fraction: 0.3, seed }).unwrap();
        let customer = by_name(&ts, "customer");
        let supplier = by_name(&ts, "supplier");
        for j in [AttrSet::from_names(["nationkey"]), AttrSet::from_names(["h"])] {
            let ji = join_informativeness(customer, supplier, &j).unwrap();
            prop_assert!((0.0..=1.0).contains(&ji), "JI {} out of bounds", ji);
        }
    }

    /// Sample prices scale linearly with the rate (pro-rata pricing).
    #[test]
    fn sample_price_linear_in_rate(rate in 0.1f64..1.0) {
        let ts = tables();
        let market = Marketplace::new(ts, EntropyPricing::default());
        let key = AttrSet::from_names(["custkey"]);
        let (_, p) = market.buy_sample(dance::market::DatasetId(3), &key, rate, 5).unwrap();
        let (_, p_full) = market.buy_sample(dance::market::DatasetId(3), &key, 1.0, 5).unwrap();
        prop_assert!((p - rate * p_full).abs() < 1e-9);
    }
}
