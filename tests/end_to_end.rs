//! End-to-end integration: offline phase → online search → purchase, across
//! all workspace crates, on both the §1 scenario and the TPC-H-like workload.

use dance::core::plan::correlation_difference;
use dance::datagen::scenario;
use dance::datagen::tpch::TpchConfig;
use dance::datagen::workload::tpch_workload;
use dance::prelude::*;

fn quick_config(rate: f64) -> DanceConfig {
    DanceConfig {
        sampling_rate: rate,
        seed: 11,
        refine_rounds: 0,
        mcmc: McmcConfig {
            iterations: 40,
            seed: 11,
            resample: None,
            ..McmcConfig::default()
        },
        ..DanceConfig::default()
    }
}

#[test]
fn health_scenario_full_loop() {
    let market = Marketplace::new(scenario::marketplace_tables(), EntropyPricing::default());
    let mut dance =
        Dance::offline(&market, vec![scenario::source_ds()], quick_config(1.0)).expect("offline");
    let req = AcquisitionRequest::new(
        AttrSet::from_names(["age"]),
        AttrSet::from_names(["disease"]),
    );
    let plan = dance.acquire(&market, &req).expect("search").expect("plan");
    assert!(!plan.queries.is_empty());
    assert!(plan.estimated.price > 0.0);

    // Purchase within a generous budget; the marketplace records revenue.
    let revenue_before = market.revenue();
    let mut budget = Budget::new(1_000.0);
    let data = dance
        .purchase(&market, &plan, &mut budget)
        .expect("affordable");
    assert_eq!(data.len(), plan.queries.len());
    assert!(market.revenue() > revenue_before);
    assert!(budget.spent() > 0.0);

    // The purchased projections carry exactly the plan's attribute sets.
    for (t, q) in data.iter().zip(&plan.queries) {
        assert_eq!(t.schema().attr_set(), q.attrs);
    }
}

/// Seeded acquisition on the (interned) TPC-H scenario is fully
/// deterministic and the money adds up: the returned plan satisfies the
/// request's budget constraint, the marketplace ledger equals sample spend +
/// purchase spend, the purchase total equals the sum of independent quotes,
/// and re-running the whole loop with the same seed reproduces the identical
/// plan (queries, attribute sets, metric bits) and identical ledger.
#[test]
fn seeded_acquisition_is_deterministic_and_ledger_consistent() {
    #[derive(Debug, PartialEq)]
    struct RunOutcome {
        query_targets: Vec<(u32, AttrSet)>,
        estimated_price: u64,
        estimated_corr: u64,
        sample_cost: u64,
        purchase_spend: u64,
        revenue: u64,
    }

    let run = |budget_cap: f64| -> RunOutcome {
        let w = tpch_workload(&TpchConfig {
            scale: 0.2,
            dirty_fraction: 0.3,
            seed: 9,
        })
        .unwrap();
        let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
        let mut dance = Dance::offline(&market, Vec::new(), quick_config(0.8)).unwrap();
        let q = w.query("Q1").unwrap();
        let req = AcquisitionRequest::new(q.source.clone(), q.target.clone()).with_constraints(
            Constraints {
                alpha: f64::INFINITY,
                beta: 0.0,
                budget: budget_cap,
            },
        );
        let plan = dance
            .acquire(&market, &req)
            .unwrap()
            .expect("plan within budget");
        assert!(
            plan.estimated.price <= budget_cap + 1e-9,
            "plan price {} exceeds budget {budget_cap}",
            plan.estimated.price
        );

        // Purchase and reconcile the ledger.
        let revenue_after_sampling = market.revenue();
        assert!((revenue_after_sampling - dance.sample_cost()).abs() < 1e-9);
        let quoted: f64 = plan
            .queries
            .iter()
            .map(|q| market.quote(q.dataset, &q.attrs).unwrap())
            .sum();
        let mut budget = Budget::new(quoted + 1.0);
        let data = dance.purchase(&market, &plan, &mut budget).unwrap();
        assert_eq!(data.len(), plan.queries.len());
        assert!((budget.spent() - quoted).abs() < 1e-9, "spend == Σ quotes");
        assert!(
            (market.revenue() - (dance.sample_cost() + budget.spent())).abs() < 1e-9,
            "ledger: revenue {} != samples {} + queries {}",
            market.revenue(),
            dance.sample_cost(),
            budget.spent()
        );

        RunOutcome {
            query_targets: plan
                .queries
                .iter()
                .map(|q| (q.dataset.0, q.attrs.clone()))
                .collect(),
            estimated_price: plan.estimated.price.to_bits(),
            estimated_corr: plan.estimated.correlation.to_bits(),
            sample_cost: dance.sample_cost().to_bits(),
            purchase_spend: budget.spent().to_bits(),
            revenue: market.revenue().to_bits(),
        }
    };

    // Find a satisfiable finite budget, then require two fresh runs under it
    // to be bit-identical.
    let unconstrained = run(f64::INFINITY);
    let cap = f64::from_bits(unconstrained.estimated_price) * 1.5;
    let a = run(cap);
    let b = run(cap);
    assert_eq!(a, b, "same seed must reproduce the identical acquisition");
}

#[test]
fn tpch_heuristic_tracks_lp_on_forced_paths() {
    // Q1's route is structurally forced (orders–customer on custkey), so the
    // heuristic must match the LP optimum exactly at full sampling rate.
    let w = tpch_workload(&TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
    let mut dance = Dance::offline(&market, Vec::new(), quick_config(1.0)).unwrap();
    let q = w.query("Q1").unwrap();
    let req = AcquisitionRequest::new(q.source.clone(), q.target.clone());
    let plan = dance.acquire(&market, &req).unwrap().expect("plan");
    let truth = dance.evaluate_true(&market, &plan.graph, &req).unwrap();

    let lp = dance::core::baseline::brute_force(
        dance.graph(),
        dance.free_vertices(),
        &dance.covers_of(&req.source_attrs),
        &dance.covers_of(&req.target_attrs),
        &req.source_attrs,
        &req.target_attrs,
        &req.constraints,
        None,
        &dance::core::baseline::BaselineConfig {
            max_tree_vertices: 2,
            ..Default::default()
        },
    )
    .unwrap()
    .expect("LP finds the forced route");
    let lp_truth = dance.evaluate_true(&market, &lp, &req).unwrap();
    let cd = correlation_difference(lp_truth.corr, truth.corr);
    assert!(cd < 1e-9, "forced path ⇒ CD = 0, got {cd}");
}

#[test]
fn budget_constraint_is_respected_by_plans() {
    let w = tpch_workload(&TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
    let mut dance = Dance::offline(&market, Vec::new(), quick_config(0.8)).unwrap();
    let q = w.query("Q2").unwrap();

    // First find the unconstrained price, then demand half of it.
    let free_req = AcquisitionRequest::new(q.source.clone(), q.target.clone());
    let unconstrained = dance.acquire(&market, &free_req).unwrap().expect("plan");
    let cap = unconstrained.estimated.price / 2.0;
    let tight =
        AcquisitionRequest::new(q.source.clone(), q.target.clone()).with_constraints(Constraints {
            alpha: f64::INFINITY,
            beta: 0.0,
            budget: cap,
        });
    match dance.acquire(&market, &tight).unwrap() {
        Some(plan) => assert!(
            plan.estimated.price <= cap + 1e-9,
            "plan {} exceeds cap {cap}",
            plan.estimated.price
        ),
        None => { /* acceptable: nothing affordable at half price */ }
    }
}

#[test]
fn refinement_buys_more_samples_and_improves_resolution() {
    let w = tpch_workload(&TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
    let mut cfg = quick_config(0.2);
    cfg.refine_rounds = 2;
    cfg.refine_multiplier = 2.0;
    let mut dance = Dance::offline(&market, Vec::new(), cfg).unwrap();
    let cost0 = dance.sample_cost();
    let sales0 = market.sales().0;

    dance.refine(&market).expect("refinement purchase");
    assert!(dance.current_rate() > 0.2);
    assert!(dance.sample_cost() > cost0);
    assert!(market.sales().0 > sales0);
    // Higher-rate samples are strictly larger or equal in rows.
    for v in 0..dance.graph().num_instances() as u32 {
        assert!(dance.graph().sample(v).num_rows() <= { dance.graph().meta(v).num_rows });
    }
}

#[test]
fn quality_constraint_filters_dirty_routes() {
    // β = 1.01 is unsatisfiable: quality ≤ 1 by construction.
    let w = tpch_workload(&TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
    let mut dance = Dance::offline(&market, Vec::new(), quick_config(0.8)).unwrap();
    let q = w.query("Q1").unwrap();
    let req =
        AcquisitionRequest::new(q.source.clone(), q.target.clone()).with_constraints(Constraints {
            alpha: f64::INFINITY,
            beta: 1.01,
            budget: f64::INFINITY,
        });
    assert!(dance.acquire(&market, &req).unwrap().is_none());
}

#[test]
fn alpha_constraint_prunes_heavy_join_paths() {
    let w = tpch_workload(&TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 9,
    })
    .unwrap();
    let market = Marketplace::new(w.tables.clone(), EntropyPricing::default());
    let mut dance = Dance::offline(&market, Vec::new(), quick_config(0.8)).unwrap();
    let q = w.query("Q3").unwrap();
    // α = 0: only perfectly informative (JI = 0) paths acceptable; at this
    // dirt level the 5-hop route always carries some weight.
    let req =
        AcquisitionRequest::new(q.source.clone(), q.target.clone()).with_constraints(Constraints {
            alpha: 0.0,
            beta: 0.0,
            budget: f64::INFINITY,
        });
    if let Some(plan) = dance.acquire(&market, &req).unwrap() {
        assert!(plan.estimated.join_informativeness <= 1e-9);
    }
}
