//! The paper's worked examples as cross-crate golden tests — if any layer
//! (values, joins, partitions, quality, lattice) drifts, these break.

use dance::core::lattice;
use dance::prelude::*;
use dance::quality::joint_quality;
use dance::relation::join::{hash_join, JoinKind};

/// Example 2.1 / Table 2: C(D, A→B) = {t1, t2, t5}.
#[test]
fn example_2_1_table_2() {
    let d = Table::from_rows(
        "D",
        &[("gt_a", ValueType::Str), ("gt_b", ValueType::Str)],
        vec![
            vec![Value::str("a1"), Value::str("b1")],
            vec![Value::str("a1"), Value::str("b1")],
            vec![Value::str("a1"), Value::str("b2")],
            vec![Value::str("a1"), Value::str("b3")],
            vec![Value::str("a2"), Value::str("b2")],
        ],
    )
    .unwrap();
    let fd = Fd::new(["gt_a"], "gt_b");
    let mask = dance::quality::correct_rows(&d, &fd).unwrap();
    assert_eq!(mask, vec![true, true, false, false, true]);
    assert!((dance::quality::quality(&d, &fd).unwrap() - 0.6).abs() < 1e-12);
}

/// Example 2.2 / Table 3: Q(D1) = 0.996, Q(D2) = 0.6, Q(D1 ⋈ D2) = 0.2.
#[test]
fn example_2_2_table_3() {
    let mut rows = Vec::new();
    for i in 0..996 {
        rows.push(vec![
            Value::str("a1"),
            Value::str("b1"),
            Value::str(format!("c{}", i + 4)),
        ]);
    }
    rows.push(vec![Value::str("a1"), Value::str("b2"), Value::str("c1")]);
    rows.push(vec![Value::str("a1"), Value::str("b2"), Value::str("c2")]);
    rows.push(vec![Value::str("a1"), Value::str("b3"), Value::str("c3")]);
    rows.push(vec![Value::str("a1"), Value::str("b3"), Value::str("c3")]);
    let d1 = Table::from_rows(
        "D1",
        &[
            ("gt2_a", ValueType::Str),
            ("gt2_b", ValueType::Str),
            ("gt2_c", ValueType::Str),
        ],
        rows,
    )
    .unwrap();
    let d2 = Table::from_rows(
        "D2",
        &[
            ("gt2_c", ValueType::Str),
            ("gt2_d", ValueType::Str),
            ("gt2_e", ValueType::Str),
        ],
        vec![
            vec![Value::str("c1"), Value::str("d1"), Value::str("e1")],
            vec![Value::str("c1"), Value::str("d1"), Value::str("e1")],
            vec![Value::str("c2"), Value::str("d1"), Value::str("e2")],
            vec![Value::str("c3"), Value::str("d1"), Value::str("e2")],
            vec![Value::str("c9999"), Value::str("d1"), Value::str("e2")],
        ],
    )
    .unwrap();
    let fd_ab = Fd::new(["gt2_a"], "gt2_b");
    let fd_de = Fd::new(["gt2_d"], "gt2_e");
    assert!((dance::quality::quality(&d1, &fd_ab).unwrap() - 0.996).abs() < 1e-12);
    assert!((dance::quality::quality(&d2, &fd_de).unwrap() - 0.6).abs() < 1e-12);

    let j = hash_join(&d1, &d2, &AttrSet::from_names(["gt2_c"]), JoinKind::Inner).unwrap();
    assert_eq!(j.num_rows(), 5);
    assert!((joint_quality(&j, &[fd_ab, fd_de]).unwrap() - 0.2).abs() < 1e-12);
}

/// Definition 4.1 / Figure 2: lattice of a 4-attribute instance has
/// 2⁴ − 4 − 1 = 11 vertices; general size formula 2^m − m − 1.
#[test]
fn figure_2_lattice_sizes() {
    assert_eq!(lattice::lattice_size(4), 11);
    for m in 2..=10 {
        let names: Vec<String> = (0..m).map(|i| format!("gt_lat_{i}")).collect();
        let a = AttrSet::from_names(names.iter().map(String::as_str));
        assert_eq!(lattice::all_vertices(&a).len(), lattice::lattice_size(m));
    }
}

/// Property 4.1: AS-edges between the same instance pair with the same join
/// attribute set share one weight — verified against the join-graph API.
#[test]
fn property_4_1_weight_sharing() {
    use dance::market::{DatasetId, DatasetMeta};
    let d1 = Table::from_rows(
        "P1",
        &[
            ("p41_b", ValueType::Int),
            ("p41_c", ValueType::Int),
            ("p41_x", ValueType::Int),
        ],
        (0..50)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i % 7), Value::Int(i)])
            .collect(),
    )
    .unwrap();
    let d2 = Table::from_rows(
        "P2",
        &[
            ("p41_b", ValueType::Int),
            ("p41_c", ValueType::Int),
            ("p41_y", ValueType::Int),
        ],
        (0..50)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i % 7), Value::Int(i * 3)])
            .collect(),
    )
    .unwrap();
    let metas: Vec<DatasetMeta> = [&d1, &d2]
        .iter()
        .enumerate()
        .map(|(i, t)| DatasetMeta {
            id: DatasetId(i as u32),
            name: t.name().into(),
            schema: t.schema().clone(),
            num_rows: t.num_rows(),
            default_key: AttrSet::singleton(t.schema().attributes()[0].id),
            version: 0,
        })
        .collect();
    let g = JoinGraph::build(
        metas,
        vec![d1.clone(), d2.clone()],
        EntropyPricing::default(),
        &JoinGraphConfig::default(),
    )
    .unwrap();
    // The weight for join attrs J is a function of (pair, J) only, equal to
    // the directly computed JI — the lattice-level AS-edges all share it.
    for j in g.candidate_join_sets(0, 1) {
        let w = g.weight(0, 1, j).unwrap();
        let direct = dance::info::join_informativeness(&d1, &d2, j).unwrap();
        assert!((w - direct).abs() < 1e-12);
    }
}

/// Definition 2.4 on **disjoint-domain** join columns: no key ever matches,
/// so the outer-join pair distribution is `2n` uniform unmatched buckets and
/// `JI = (log2(2n) − 1) / log2(2n)` exactly — approaching 1 (a useless join)
/// as the domains grow. Holds identically for string and integer keys, and
/// for the interned twin of the same tables.
#[test]
fn ji_of_disjoint_domain_columns() {
    for n in [4usize, 32, 128] {
        let l = Table::from_rows(
            "L",
            &[("jidd_k", ValueType::Str)],
            (0..n).map(|i| vec![Value::str(format!("l{i}"))]).collect(),
        )
        .unwrap();
        let r = Table::from_rows(
            "R",
            &[("jidd_k", ValueType::Str)],
            (0..n).map(|i| vec![Value::str(format!("r{i}"))]).collect(),
        )
        .unwrap();
        let on = AttrSet::from_names(["jidd_k"]);
        let expected = ((2.0 * n as f64).log2() - 1.0) / (2.0 * n as f64).log2();
        let ji = dance::info::join_informativeness(&l, &r, &on).unwrap();
        assert!((ji - expected).abs() < 1e-12, "n={n}: {ji} vs {expected}");

        // Same formula on Int keys with disjoint ranges.
        let li = Table::from_rows(
            "LI",
            &[("jidd_i", ValueType::Int)],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
        .unwrap();
        let ri = Table::from_rows(
            "RI",
            &[("jidd_i", ValueType::Int)],
            (0..n).map(|i| vec![Value::Int(-(i as i64) - 1)]).collect(),
        )
        .unwrap();
        let ji_int =
            dance::info::join_informativeness(&li, &ri, &AttrSet::from_names(["jidd_i"])).unwrap();
        assert!((ji_int - expected).abs() < 1e-12, "int n={n}: {ji_int}");

        // Interned twins agree bit-for-bit with the keyed reference.
        let reg = dance::relation::InternerRegistry::new();
        let ji_interned =
            dance::info::join_informativeness(&l.intern_into(&reg), &r.intern_into(&reg), &on)
                .unwrap();
        let keyed = dance::info::join_informativeness_keyed(&l, &r, &on).unwrap();
        assert_eq!(ji_interned.to_bits(), keyed.to_bits());
    }
}

/// Definition 2.4 on **single-group** (constant) join columns — the 0/0
/// degenerate corner: one shared constant ⇒ everything matches ⇒ `JI = 0`;
/// two different constants ⇒ the two NULL-buckets are perfectly
/// anti-coordinated (`I = H`) ⇒ `JI = 0` by the formula (a documented
/// small-support artifact); a constant against an empty side ⇒ `H = 0` with
/// nothing matched ⇒ convention `JI = 1`. Multiplicities must not change any
/// of it.
#[test]
fn ji_of_single_group_columns() {
    let on = AttrSet::from_names(["jisg_k"]);
    let constant = |name: &str, v: &str, reps: usize| {
        Table::from_rows(
            name,
            &[("jisg_k", ValueType::Str)],
            (0..reps).map(|_| vec![Value::str(v)]).collect(),
        )
        .unwrap()
    };
    // Shared constant, equal and unequal multiplicities.
    for reps in [1usize, 3, 7] {
        let l = constant("L", "only", 5);
        let r = constant("R", "only", reps);
        assert_eq!(
            dance::info::join_informativeness(&l, &r, &on).unwrap(),
            0.0,
            "reps={reps}"
        );
    }
    // Different constants: anti-coordinated NULL buckets, formula gives 0.
    let l = constant("L", "left_only", 4);
    let r = constant("R", "right_only", 6);
    assert_eq!(dance::info::join_informativeness(&l, &r, &on).unwrap(), 0.0);
    // Constant vs empty: no pairs matched and H = 0 ⇒ convention 1.
    let empty = constant("R", "unused", 0);
    assert_eq!(
        dance::info::join_informativeness(&l, &empty, &on).unwrap(),
        1.0
    );
    // All-NULL column behaves as one unmatchable group against a constant:
    // also the anti-coordinated two-bucket artifact.
    let nulls = Table::from_rows(
        "N",
        &[("jisg_k", ValueType::Str)],
        vec![vec![Value::Null], vec![Value::Null]],
    )
    .unwrap();
    assert_eq!(
        dance::info::join_informativeness(&l, &nulls, &on).unwrap(),
        0.0
    );
}

/// Definition 2.4's range and monotonicity-in-mismatch on marketplace-shaped
/// data, plus Definition 2.5's non-negativity for the categorical case.
#[test]
fn measures_behave_on_generated_data() {
    let ts = dance::datagen::tpch::tpch(&dance::datagen::tpch::TpchConfig {
        scale: 0.2,
        dirty_fraction: 0.3,
        seed: 33,
    })
    .unwrap();
    let orders = ts.iter().find(|t| t.name() == "orders").unwrap();
    let customer = ts.iter().find(|t| t.name() == "customer").unwrap();
    let ji = dance::info::join_informativeness(orders, customer, &AttrSet::from_names(["custkey"]))
        .unwrap();
    assert!((0.0..=1.0).contains(&ji));

    let j = hash_join(
        orders,
        customer,
        &AttrSet::from_names(["custkey"]),
        JoinKind::Inner,
    )
    .unwrap();
    let corr = dance::info::correlation(
        &j,
        &AttrSet::from_names(["o_orderstatus"]),
        &AttrSet::from_names(["c_mktsegment"]),
    )
    .unwrap();
    assert!(corr >= 0.0, "categorical CORR = I(X;Y) ≥ 0, got {corr}");
}
